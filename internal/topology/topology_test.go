package topology

import (
	"testing"
	"testing/quick"
)

func TestOpenPower720Shape(t *testing.T) {
	topo := OpenPower720()
	if err := topo.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := topo.NumCPUs(); got != 8 {
		t.Errorf("NumCPUs = %d, want 8", got)
	}
	if got := topo.NumCores(); got != 4 {
		t.Errorf("NumCores = %d, want 4", got)
	}
	if topo.Chips != 2 || topo.CoresPerChip != 2 || topo.ContextsPerCore != 2 {
		t.Errorf("unexpected shape %+v", topo)
	}
}

func TestPower5_32WayShape(t *testing.T) {
	topo := Power5_32Way()
	if got := topo.NumCPUs(); got != 32 {
		t.Errorf("NumCPUs = %d, want 32", got)
	}
	if topo.Chips != 8 {
		t.Errorf("Chips = %d, want 8", topo.Chips)
	}
}

func TestCPUIDArithmetic(t *testing.T) {
	topo := OpenPower720()
	tests := []struct {
		cpu     CPUID
		chip    int
		core    int
		context int
	}{
		{0, 0, 0, 0},
		{1, 0, 0, 1},
		{2, 0, 1, 0},
		{3, 0, 1, 1},
		{4, 1, 2, 0},
		{5, 1, 2, 1},
		{6, 1, 3, 0},
		{7, 1, 3, 1},
	}
	for _, tc := range tests {
		if got := topo.ChipOf(tc.cpu); got != tc.chip {
			t.Errorf("ChipOf(%d) = %d, want %d", tc.cpu, got, tc.chip)
		}
		if got := topo.CoreOf(tc.cpu); got != tc.core {
			t.Errorf("CoreOf(%d) = %d, want %d", tc.cpu, got, tc.core)
		}
		if got := topo.ContextOf(tc.cpu); got != tc.context {
			t.Errorf("ContextOf(%d) = %d, want %d", tc.cpu, got, tc.context)
		}
	}
}

func TestCPUsOfChipAndCore(t *testing.T) {
	topo := OpenPower720()
	chip1 := topo.CPUsOfChip(1)
	want := []CPUID{4, 5, 6, 7}
	if len(chip1) != len(want) {
		t.Fatalf("CPUsOfChip(1) = %v, want %v", chip1, want)
	}
	for i := range want {
		if chip1[i] != want[i] {
			t.Fatalf("CPUsOfChip(1) = %v, want %v", chip1, want)
		}
	}
	core3 := topo.CPUsOfCore(3)
	if len(core3) != 2 || core3[0] != 6 || core3[1] != 7 {
		t.Fatalf("CPUsOfCore(3) = %v, want [6 7]", core3)
	}
}

func TestSameChipSameCore(t *testing.T) {
	topo := OpenPower720()
	if !topo.SameCore(0, 1) {
		t.Error("CPUs 0 and 1 should share a core")
	}
	if topo.SameCore(1, 2) {
		t.Error("CPUs 1 and 2 should not share a core")
	}
	if !topo.SameChip(1, 2) {
		t.Error("CPUs 1 and 2 should share a chip")
	}
	if topo.SameChip(3, 4) {
		t.Error("CPUs 3 and 4 should not share a chip")
	}
}

func TestValidateRejectsBadShapes(t *testing.T) {
	bad := []Topology{
		{Chips: 0, CoresPerChip: 1, ContextsPerCore: 1},
		{Chips: 1, CoresPerChip: 0, ContextsPerCore: 1},
		{Chips: 1, CoresPerChip: 1, ContextsPerCore: 0},
		{Chips: -2, CoresPerChip: 2, ContextsPerCore: 2},
	}
	for _, topo := range bad {
		if err := topo.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", topo)
		}
	}
}

func TestDefaultLatenciesLadder(t *testing.T) {
	lat := DefaultLatencies()
	if err := lat.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// The paper's key property: any cross-chip access costs at least 120
	// cycles, far above on-chip sharing.
	if lat.RemoteL2 < 120 {
		t.Errorf("RemoteL2 = %d, want >= 120 (Figure 1)", lat.RemoteL2)
	}
	if lat.L1Hit > 2 {
		t.Errorf("L1Hit = %d, want 1-2 cycles (Figure 1)", lat.L1Hit)
	}
	if lat.L2Hit < 10 || lat.L2Hit > 20 {
		t.Errorf("L2Hit = %d, want 10-20 cycles (Figure 1)", lat.L2Hit)
	}
}

func TestLatenciesValidateRejectsInversions(t *testing.T) {
	bad := []Latencies{
		{L1Hit: 0, L2Hit: 10, L3Hit: 90, RemoteL2: 120, RemoteL3: 160, Memory: 280},
		{L1Hit: 20, L2Hit: 10, L3Hit: 90, RemoteL2: 120, RemoteL3: 160, Memory: 280},
		{L1Hit: 2, L2Hit: 10, L3Hit: 5, RemoteL2: 120, RemoteL3: 160, Memory: 280},
		{L1Hit: 2, L2Hit: 10, L3Hit: 90, RemoteL2: 80, RemoteL3: 160, Memory: 280},
		{L1Hit: 2, L2Hit: 10, L3Hit: 90, RemoteL2: 120, RemoteL3: 100, Memory: 280},
		{L1Hit: 2, L2Hit: 10, L3Hit: 90, RemoteL2: 120, RemoteL3: 160, Memory: 100},
	}
	for _, lat := range bad {
		if err := lat.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", lat)
		}
	}
}

// Property: CPU id arithmetic round-trips — reconstructing the id from
// chip, core-within-chip and context yields the original id, for arbitrary
// valid topologies.
func TestCPUIDRoundTrip(t *testing.T) {
	f := func(chips, cores, ctxs uint8) bool {
		topo := Topology{
			Chips:           int(chips%6) + 1,
			CoresPerChip:    int(cores%6) + 1,
			ContextsPerCore: int(ctxs%6) + 1,
		}
		for id := 0; id < topo.NumCPUs(); id++ {
			cpu := CPUID(id)
			chip := topo.ChipOf(cpu)
			core := topo.CoreOf(cpu)
			ctx := topo.ContextOf(cpu)
			rebuilt := (chip*topo.CoresPerChip+(core-chip*topo.CoresPerChip))*topo.ContextsPerCore + ctx
			if rebuilt != id {
				return false
			}
			if core/topo.CoresPerChip != chip {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: every CPU appears in exactly one chip's CPUsOfChip listing.
func TestChipPartition(t *testing.T) {
	f := func(chips, cores, ctxs uint8) bool {
		topo := Topology{
			Chips:           int(chips%5) + 1,
			CoresPerChip:    int(cores%5) + 1,
			ContextsPerCore: int(ctxs%5) + 1,
		}
		seen := make(map[CPUID]int)
		for chip := 0; chip < topo.Chips; chip++ {
			for _, cpu := range topo.CPUsOfChip(chip) {
				seen[cpu]++
				if topo.ChipOf(cpu) != chip {
					return false
				}
			}
		}
		if len(seen) != topo.NumCPUs() {
			return false
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
