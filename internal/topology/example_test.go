package topology_test

import (
	"fmt"

	"threadcluster/internal/topology"
)

// Example maps out the paper's evaluation machine.
func Example() {
	topo := topology.OpenPower720()
	fmt.Println(topo)
	fmt.Println("CPU 5 is on chip", topo.ChipOf(5), "core", topo.CoreOf(5))
	fmt.Println("CPUs 4 and 5 share a core:", topo.SameCore(4, 5))
	fmt.Println("CPUs 3 and 4 share a chip:", topo.SameChip(3, 4))
	// Output:
	// 2x2x2 SMPxCMPxSMT (8 CPUs)
	// CPU 5 is on chip 1 core 2
	// CPUs 4 and 5 share a core: true
	// CPUs 3 and 4 share a chip: false
}

// ExampleLatencies shows the Figure 1 cost ladder the whole system is
// built around.
func ExampleLatencies() {
	lat := topology.DefaultLatencies()
	fmt.Println("on-core sharing:", lat.L1Hit, "cycles")
	fmt.Println("on-chip sharing:", lat.L2Hit, "cycles")
	fmt.Println("cross-chip sharing:", lat.RemoteL2, "cycles")
	// Output:
	// on-core sharing: 2 cycles
	// on-chip sharing: 14 cycles
	// cross-chip sharing: 120 cycles
}
