// Package topology describes the shape of an SMP-CMP-SMT multiprocessor:
// how many chips the machine has, how many cores live on each chip, and how
// many simultaneous-multithreading (SMT) hardware contexts each core exposes.
//
// The package also carries the memory-hierarchy latency ladder of Figure 1
// of the paper (IBM OpenPower 720): on-core sharing through the L1 costs a
// couple of cycles, on-chip sharing through the L2 costs on the order of
// ten cycles, and any cross-chip access costs at least 120 cycles. That
// non-uniform data-sharing overhead is the entire reason sharing-aware
// scheduling pays off, so everything else in this repository is built on
// top of these types.
package topology

import "fmt"

// CPUID identifies a single hardware context (a "logical CPU" in OS terms).
// IDs are dense in [0, Topology.NumCPUs()) and are laid out
// chip-major, then core, then SMT context:
//
//	id = (chip*CoresPerChip + core)*ContextsPerCore + context
type CPUID int

// Topology is the static shape of the machine.
type Topology struct {
	// Chips is the number of processor chips (separate sockets).
	Chips int
	// CoresPerChip is the number of CPU cores on each chip.
	CoresPerChip int
	// ContextsPerCore is the number of SMT hardware contexts per core.
	ContextsPerCore int
}

// Validate reports whether the topology describes a usable machine.
func (t Topology) Validate() error {
	if t.Chips <= 0 {
		return fmt.Errorf("topology: Chips must be positive, got %d", t.Chips)
	}
	if t.CoresPerChip <= 0 {
		return fmt.Errorf("topology: CoresPerChip must be positive, got %d", t.CoresPerChip)
	}
	if t.ContextsPerCore <= 0 {
		return fmt.Errorf("topology: ContextsPerCore must be positive, got %d", t.ContextsPerCore)
	}
	return nil
}

// NumCPUs returns the total number of hardware contexts in the machine.
func (t Topology) NumCPUs() int {
	return t.Chips * t.CoresPerChip * t.ContextsPerCore
}

// NumCores returns the total number of cores in the machine.
func (t Topology) NumCores() int {
	return t.Chips * t.CoresPerChip
}

// ChipOf returns the chip index [0, Chips) that hosts the given CPU.
func (t Topology) ChipOf(cpu CPUID) int {
	return int(cpu) / (t.CoresPerChip * t.ContextsPerCore)
}

// CoreOf returns the global core index [0, NumCores()) that hosts the CPU.
func (t Topology) CoreOf(cpu CPUID) int {
	return int(cpu) / t.ContextsPerCore
}

// ContextOf returns the SMT context index within the CPU's core.
func (t Topology) ContextOf(cpu CPUID) int {
	return int(cpu) % t.ContextsPerCore
}

// CPUsOfChip returns the CPU ids that live on the given chip, in order.
func (t Topology) CPUsOfChip(chip int) []CPUID {
	per := t.CoresPerChip * t.ContextsPerCore
	cpus := make([]CPUID, 0, per)
	for i := 0; i < per; i++ {
		cpus = append(cpus, CPUID(chip*per+i))
	}
	return cpus
}

// CPUsOfCore returns the CPU ids (SMT contexts) of the given global core.
func (t Topology) CPUsOfCore(core int) []CPUID {
	cpus := make([]CPUID, 0, t.ContextsPerCore)
	for i := 0; i < t.ContextsPerCore; i++ {
		cpus = append(cpus, CPUID(core*t.ContextsPerCore+i))
	}
	return cpus
}

// SameChip reports whether two CPUs share a chip (and therefore an L2).
func (t Topology) SameChip(a, b CPUID) bool { return t.ChipOf(a) == t.ChipOf(b) }

// SameCore reports whether two CPUs share a core (and therefore an L1).
func (t Topology) SameCore(a, b CPUID) bool { return t.CoreOf(a) == t.CoreOf(b) }

// String returns a compact "chips x cores x contexts" description.
func (t Topology) String() string {
	return fmt.Sprintf("%dx%dx%d SMPxCMPxSMT (%d CPUs)",
		t.Chips, t.CoresPerChip, t.ContextsPerCore, t.NumCPUs())
}

// Latencies is the cost, in CPU cycles, of satisfying a data access from
// each level of the memory hierarchy. The defaults mirror Figure 1: the
// crucial property is the >= 120-cycle cliff for anything that crosses a
// chip boundary.
type Latencies struct {
	L1Hit    uint64 // satisfied by the core's own L1 data cache
	L2Hit    uint64 // satisfied by the chip-local L2
	L3Hit    uint64 // satisfied by the chip-local (off-chip victim) L3
	RemoteL2 uint64 // satisfied by another chip's L2 (cross-chip transfer)
	RemoteL3 uint64 // satisfied by another chip's L3
	Memory   uint64 // satisfied by main memory attached to the local chip
	// RemoteMemory is the cost of a fill from another chip's memory
	// controller (NUMA). Zero disables the distinction: all memory is
	// charged the local Memory latency, which matches the paper's base
	// platform view (Figure 1 shows one memory latency).
	RemoteMemory uint64
}

// Validate reports whether the latency ladder is monotone in the way the
// hierarchy requires (each level at least as expensive as the previous
// local level, and every remote source at least as expensive as local L3).
func (l Latencies) Validate() error {
	if l.L1Hit == 0 {
		return fmt.Errorf("topology: L1Hit latency must be nonzero")
	}
	if l.L2Hit < l.L1Hit || l.L3Hit < l.L2Hit {
		return fmt.Errorf("topology: local latencies must be non-decreasing: %+v", l)
	}
	if l.RemoteL2 < l.L3Hit || l.RemoteL3 < l.RemoteL2 {
		return fmt.Errorf("topology: remote latencies must sit above local L3: %+v", l)
	}
	if l.Memory < l.RemoteL3 {
		return fmt.Errorf("topology: memory latency must be the most expensive: %+v", l)
	}
	if l.RemoteMemory != 0 && l.RemoteMemory < l.Memory {
		return fmt.Errorf("topology: remote memory must cost at least local memory: %+v", l)
	}
	return nil
}

// OpenPower720 is the evaluation platform of the paper (Table 1): two
// Power5 chips, two cores per chip, two SMT contexts per core.
func OpenPower720() Topology {
	return Topology{Chips: 2, CoresPerChip: 2, ContextsPerCore: 2}
}

// Power5_32Way is the larger machine of Section 7.4: eight Power5 chips
// (32 hardware contexts).
func Power5_32Way() Topology {
	return Topology{Chips: 8, CoresPerChip: 2, ContextsPerCore: 2}
}

// FlatSMP is a degenerate topology with one context per core and one core
// per chip: a traditional SMP with no shared caches, useful in tests.
func FlatSMP(n int) Topology {
	return Topology{Chips: n, CoresPerChip: 1, ContextsPerCore: 1}
}

// NiagaraLike is a single-chip many-context machine in the spirit of the
// Sun Niagara the paper's introduction cites ("currently has 32 hardware
// contexts"): 8 cores of 4 contexts on one chip. With only one chip there
// is no remote cache to reach, so sharing-aware placement has nothing to
// improve — a useful degenerate case.
func NiagaraLike() Topology {
	return Topology{Chips: 1, CoresPerChip: 8, ContextsPerCore: 4}
}

// DefaultLatencies is the Figure 1 latency ladder, in cycles, for the
// OpenPower 720. The figure gives 1-2 cycles for L1, 10-20 for the on-chip
// L2, and "at least 120 cycles" for any cross-chip sharing; local L3 and
// memory values follow published Power5 measurements.
func DefaultLatencies() Latencies {
	return Latencies{
		L1Hit:    2,
		L2Hit:    14,
		L3Hit:    90,
		RemoteL2: 120,
		RemoteL3: 160,
		Memory:   280,
	}
}

// NUMALatencies is DefaultLatencies plus a distinct remote-memory cost,
// for the Section 8 NUMA extension.
func NUMALatencies() Latencies {
	lat := DefaultLatencies()
	lat.RemoteMemory = 420
	return lat
}
