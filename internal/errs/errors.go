// Package errs defines the sentinel errors shared across the simulator's
// layers. Internal packages wrap these with %w so callers can classify
// failures with errors.Is without parsing message strings; the root
// package re-exports the simulation sentinels as part of the public API,
// and the server maps the serving sentinels onto HTTP statuses.
package errs

import "errors"

var (
	// ErrDuplicateThread reports an attempt to register a thread ID that
	// is already installed on the machine or scheduler.
	ErrDuplicateThread = errors.New("duplicate thread")

	// ErrUnknownThread reports an operation on a thread ID the machine or
	// scheduler has never seen (or has already removed).
	ErrUnknownThread = errors.New("unknown thread")

	// ErrThreadRunning reports a structural operation (removal) attempted
	// while the thread is dispatched mid-quantum.
	ErrThreadRunning = errors.New("thread is running")

	// ErrBadConfig reports an invalid configuration: an impossible
	// topology, cache geometry, workload parameterization, engine setting
	// or job specification.
	ErrBadConfig = errors.New("bad configuration")

	// ErrAlreadyInstalled reports a second Install of a component that
	// supports only one installation (e.g. the clustering engine).
	ErrAlreadyInstalled = errors.New("already installed")

	// ErrJobNotFound reports an operation on a job ID the server has
	// never admitted (or has long since forgotten).
	ErrJobNotFound = errors.New("job not found")

	// ErrJobExists reports a submission whose client-chosen ID collides
	// with a job the server already holds.
	ErrJobExists = errors.New("job already exists")

	// ErrJobFinal reports a state change (cancellation) attempted on a
	// job that already reached a terminal state.
	ErrJobFinal = errors.New("job already final")

	// ErrJobNotDone reports a result fetch for a job that has not
	// finished yet.
	ErrJobNotDone = errors.New("job not done")

	// ErrOverloaded reports an admission rejected by backpressure: the
	// queue is at depth or the outstanding token budget is exhausted.
	// Carries a Retry-After hint at the HTTP layer.
	ErrOverloaded = errors.New("server overloaded")

	// ErrUnavailable reports a request to a server that is draining or
	// has not started; nothing is wrong with the request itself.
	ErrUnavailable = errors.New("server unavailable")

	// ErrSpoolCorrupt reports a spool or checkpoint file that failed to
	// parse or validate at re-admission. The server quarantines the file
	// (renames it aside) and keeps starting; the wrapped cause says what
	// was wrong with it.
	ErrSpoolCorrupt = errors.New("corrupt spool entry")
)

// Sentinel pairs a sentinel with its declared name, for tools that need
// the full set (the errwrap analyzer derives its cross-package
// message table from this at init; the server derives its HTTP error
// codes from Name).
type Sentinel struct {
	// Name is the variable's declared name ("ErrBadConfig").
	Name string
	// Err is the sentinel itself.
	Err error
}

// Sentinels returns every sentinel declared in this package, in
// declaration order. A test parses this file's AST to guarantee the
// list is complete, so downstream consumers (the errwrap analyzer's
// duplicate-message table, the server's error-code mapping) cannot
// silently drift from the declarations above.
func Sentinels() []Sentinel {
	return []Sentinel{
		{"ErrDuplicateThread", ErrDuplicateThread},
		{"ErrUnknownThread", ErrUnknownThread},
		{"ErrThreadRunning", ErrThreadRunning},
		{"ErrBadConfig", ErrBadConfig},
		{"ErrAlreadyInstalled", ErrAlreadyInstalled},
		{"ErrJobNotFound", ErrJobNotFound},
		{"ErrJobExists", ErrJobExists},
		{"ErrJobFinal", ErrJobFinal},
		{"ErrJobNotDone", ErrJobNotDone},
		{"ErrOverloaded", ErrOverloaded},
		{"ErrUnavailable", ErrUnavailable},
		{"ErrSpoolCorrupt", ErrSpoolCorrupt},
	}
}
