// Package errs defines the sentinel errors shared across the simulator's
// layers. Internal packages wrap these with %w so callers can classify
// failures with errors.Is without parsing message strings; the root
// package re-exports them as part of the public API.
package errs

import "errors"

var (
	// ErrDuplicateThread reports an attempt to register a thread ID that
	// is already installed on the machine or scheduler.
	ErrDuplicateThread = errors.New("duplicate thread")

	// ErrUnknownThread reports an operation on a thread ID the machine or
	// scheduler has never seen (or has already removed).
	ErrUnknownThread = errors.New("unknown thread")

	// ErrThreadRunning reports a structural operation (removal) attempted
	// while the thread is dispatched mid-quantum.
	ErrThreadRunning = errors.New("thread is running")

	// ErrBadConfig reports an invalid configuration: an impossible
	// topology, cache geometry, workload parameterization or engine
	// setting.
	ErrBadConfig = errors.New("bad configuration")

	// ErrAlreadyInstalled reports a second Install of a component that
	// supports only one installation (e.g. the clustering engine).
	ErrAlreadyInstalled = errors.New("already installed")
)
