package errs

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// TestSentinelsComplete parses this package's source and asserts that
// Sentinels() lists exactly the declared `var ErrX = errors.New(...)`
// sentinels, in declaration order with matching messages. This is the
// guard that lets the errwrap analyzer (and the server's error-code
// table) derive from Sentinels() instead of hand-maintaining a copy.
func TestSentinelsComplete(t *testing.T) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "errors.go", nil, 0)
	if err != nil {
		t.Fatal(err)
	}

	type decl struct{ name, msg string }
	var declared []decl
	ast.Inspect(f, func(n ast.Node) bool {
		gd, ok := n.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return true
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if i >= len(vs.Values) {
					continue
				}
				call, ok := vs.Values[i].(*ast.CallExpr)
				if !ok || len(call.Args) != 1 {
					continue
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "New" {
					continue
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok || lit.Kind != token.STRING {
					continue
				}
				msg, err := strconv.Unquote(lit.Value)
				if err != nil {
					t.Fatalf("unquoting %s: %v", lit.Value, err)
				}
				declared = append(declared, decl{name.Name, msg})
			}
		}
		return true
	})
	if len(declared) == 0 {
		t.Fatal("parsed no sentinel declarations from errors.go")
	}

	got := Sentinels()
	if len(got) != len(declared) {
		t.Fatalf("Sentinels() lists %d sentinels, errors.go declares %d — update Sentinels()", len(got), len(declared))
	}
	for i, d := range declared {
		if got[i].Name != d.name {
			t.Errorf("Sentinels()[%d].Name = %q, declaration order says %q", i, got[i].Name, d.name)
		}
		if got[i].Err == nil || got[i].Err.Error() != d.msg {
			t.Errorf("Sentinels()[%d] (%s) message = %q, declared %q", i, d.name, got[i].Err, d.msg)
		}
	}
}

// TestSentinelMessagesDistinct: the errwrap analyzer keys its duplicate
// check on the message text, so two sentinels must never share one.
func TestSentinelMessagesDistinct(t *testing.T) {
	seen := map[string]string{}
	for _, s := range Sentinels() {
		if prev, ok := seen[s.Err.Error()]; ok {
			t.Errorf("%s and %s share message %q", prev, s.Name, s.Err)
		}
		seen[s.Err.Error()] = s.Name
	}
}
