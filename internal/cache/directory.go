package cache

import (
	"fmt"

	"threadcluster/internal/memory"
)

// CoherenceMode selects how the hierarchy resolves coherence actions that
// span caches: snoops for a line another chip may hold, invalidations on a
// write, and downgrades on a remote read.
type CoherenceMode int

const (
	// CoherenceDirectory (the default) keeps per-line sharer state — which
	// cores hold the line in L1, which chips hold it in L2/L3 — so every
	// coherence action touches only the actual holders. Cost is O(sharers)
	// per action instead of O(cores + chips). The state is sharded by chip
	// (each chip owns the L1/owner records of its own cores) plus one
	// machine-wide chip-presence table, which is what makes the deferred
	// Lane execution model race-free.
	CoherenceDirectory CoherenceMode = iota
	// CoherenceBroadcast resolves every coherence action by linearly
	// probing all cores' L1s and all chips' L2/L3s, like a bus-snooping
	// protocol. It is the reference implementation the directory is
	// differentially tested against.
	CoherenceBroadcast
)

func (m CoherenceMode) String() string {
	switch m {
	case CoherenceDirectory:
		return "directory"
	case CoherenceBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("CoherenceMode(%d)", int(m))
}

// ParseCoherenceMode maps a CLI/config string to a mode.
func ParseCoherenceMode(s string) (CoherenceMode, error) {
	switch s {
	case "directory":
		return CoherenceDirectory, nil
	case "broadcast":
		return CoherenceBroadcast, nil
	}
	return 0, fmt.Errorf("cache: unknown coherence mode %q (want directory or broadcast)", s)
}

// NoOwner marks a shard entry with no current write owner.
const NoOwner = -1

// presEntry is the machine-wide presence record of one cache line: which
// chips hold it in their L2 and which in their victim L3. Bitmask width
// caps the directory at 64 chips (and shardEntry at 64 cores);
// NewHierarchy falls back to broadcast beyond that.
//
// During a deferred slice the presence table is frozen — chip lanes only
// read it — and every mutation queues as a mailbox op applied at the
// slice barrier in canonical chip order.
type presEntry struct {
	l2 uint64 // chips holding the line in their L2
	l3 uint64 // chips holding the line in their victim L3
}

func (e *presEntry) empty() bool { return e.l2 == 0 && e.l3 == 0 }

// shardEntry is one chip's private view of a line: which of the chip's
// cores hold it in their L1, and which core (if any) most recently took
// write ownership. Core bits are global core ids, but only this chip's
// bits can be set. A chip mutates its own shard immediately during a
// slice; other chips' shards are touched only at the slice barrier.
type shardEntry struct {
	l1 uint64 // this chip's cores holding the line in their L1
	// owner is the core that most recently obtained write ownership of
	// the line (its L1 copy went Modified), or NoOwner. Diagnostic
	// metadata: coherence decisions use the presence masks.
	owner int8
}

func (e *shardEntry) empty() bool { return e.l1 == 0 }

// lineTable is an open-addressed hash table from line address to a
// per-line entry, with linear probing and backward-shift deletion. A
// custom table rather than a Go map because it sits on the miss path of
// every access: probes must not hash through runtime map machinery or
// allocate per line. Entries exist only for lines cached somewhere, so
// occupancy tracks live cache contents, not the address space.
type lineTable[E any] struct {
	keys []uint64 // line address + 1; 0 marks an empty slot
	ents []E      // parallel to keys
	mask uint64   // len(keys) - 1
	n    int      // occupied slots
	peak int
}

const lineTableMinSize = 256

func (t *lineTable[E]) init() {
	t.keys = make([]uint64, lineTableMinSize)
	t.ents = make([]E, lineTableMinSize)
	t.mask = lineTableMinSize - 1
	t.n = 0
}

// lineKey maps a line address to a nonzero table key. Lines are multiples
// of the line size, so +1 never collides with another line's key.
func lineKey(line memory.Addr) uint64 { return uint64(line) + 1 }

// slot hashes a key to its home slot (Fibonacci hashing).
func (t *lineTable[E]) slot(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> 32 & t.mask
}

// find returns the entry for the line, or nil. The pointer is valid only
// until the next insert or delete.
func (t *lineTable[E]) find(line memory.Addr) *E {
	k := lineKey(line)
	for i := t.slot(k); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return &t.ents[i]
		case 0:
			return nil
		}
	}
}

// ensure returns the entry for the line, creating a zero entry if absent.
// The pointer is valid only until the next insert or delete.
func (t *lineTable[E]) ensure(line memory.Addr) *E {
	k := lineKey(line)
	for i := t.slot(k); ; i = (i + 1) & t.mask {
		switch t.keys[i] {
		case k:
			return &t.ents[i]
		case 0:
			// Grow at 50% load: probe chains stay short, and the table is
			// tiny next to the caches it mirrors.
			if uint64(t.n)*2 >= uint64(len(t.keys)) {
				t.grow()
				return t.ensure(line)
			}
			t.keys[i] = k
			var zero E
			t.ents[i] = zero
			t.n++
			if t.n > t.peak {
				t.peak = t.n
			}
			return &t.ents[i]
		}
	}
}

func (t *lineTable[E]) grow() {
	oldKeys, oldEnts := t.keys, t.ents
	size := uint64(len(oldKeys)) * 2
	t.keys = make([]uint64, size)
	t.ents = make([]E, size)
	t.mask = size - 1
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := t.slot(k)
		for t.keys[j] != 0 {
			j = (j + 1) & t.mask
		}
		t.keys[j] = k
		t.ents[j] = oldEnts[i]
	}
}

// drop removes the line's entry, backward-shifting the probe cluster so
// lookups stay tombstone-free. Callers drop an entry once it records no
// holder. Dropping an absent line is a no-op.
func (t *lineTable[E]) drop(line memory.Addr) {
	k := lineKey(line)
	i := t.slot(k)
	for t.keys[i] != k {
		if t.keys[i] == 0 {
			return
		}
		i = (i + 1) & t.mask
	}
	t.n--
	j := i
	for {
		j = (j + 1) & t.mask
		if t.keys[j] == 0 {
			break
		}
		home := t.slot(t.keys[j])
		// The entry at j may move to i only if its home slot lies
		// cyclically at or before i (otherwise a lookup starting at home
		// would stop early at the vacated slot).
		if (i-home)&t.mask <= (j-home)&t.mask {
			t.keys[i] = t.keys[j]
			t.ents[i] = t.ents[j]
			i = j
		}
	}
	t.keys[i] = 0
}

// forEach visits every tracked line.
func (t *lineTable[E]) forEach(f func(line memory.Addr, e *E)) {
	for i, k := range t.keys {
		if k != 0 {
			f(memory.Addr(k-1), &t.ents[i])
		}
	}
}

// DirectoryLines returns how many lines the coherence directory currently
// tracks (0 in broadcast mode) — the presence table's occupancy. L2/L3
// inclusion of the L1s means every cached line appears here.
func (h *Hierarchy) DirectoryLines() int {
	if h.mode != CoherenceDirectory {
		return 0
	}
	return h.pres.n
}

// DirectoryPeakLines returns the largest occupancy the directory reached.
func (h *Hierarchy) DirectoryPeakLines() int {
	if h.mode != CoherenceDirectory {
		return 0
	}
	return h.pres.peak
}

// SnoopProbesAvoided returns how many individual cache probes (L1/L2/L3
// set scans) the directory answered from its presence bits instead of
// issuing, relative to what the broadcast protocol would have scanned for
// the same access stream. Always 0 in broadcast mode.
func (h *Hierarchy) SnoopProbesAvoided() uint64 {
	s := h.probesAvoided
	for i := range h.lanes {
		s += h.lanes[i].probesAvoided
	}
	return s
}

// Coherence returns the mode the hierarchy is actually running (a
// directory request on a machine wider than 64 cores or chips falls back
// to broadcast).
func (h *Hierarchy) Coherence() CoherenceMode { return h.mode }

// chipCoreMask returns the bitmask of global core ids on the given chip.
func (h *Hierarchy) chipCoreMask(chip int) uint64 {
	per := h.topo.CoresPerChip
	return ((uint64(1) << uint(per)) - 1) << uint(chip*per)
}

// CheckDirectory verifies the sharded directory against a ground-truth
// scan of every cache's contents: each chip shard's L1 masks and the
// machine-wide presence table must correspond exactly to valid lines and
// vice versa, and each shard's owner (when set) must be a recorded L1
// sharer on that chip. Broadcast-mode hierarchies trivially pass. Tests
// and the fuzz target call it between accesses (i.e. at barrier
// boundaries); it is O(total cache capacity).
func (h *Hierarchy) CheckDirectory() error {
	if h.mode != CoherenceDirectory {
		return nil
	}
	type truthEntry struct {
		l1, l2, l3 uint64
	}
	truth := make(map[memory.Addr]*truthEntry)
	ensure := func(line memory.Addr) *truthEntry {
		e := truth[line]
		if e == nil {
			e = &truthEntry{}
			truth[line] = e
		}
		return e
	}
	for core, c := range h.l1 {
		core := core
		c.ForEachLine(func(line memory.Addr, _ State) {
			ensure(line).l1 |= 1 << uint(core)
		})
	}
	for chip, c := range h.l2 {
		chip := chip
		c.ForEachLine(func(line memory.Addr, _ State) {
			ensure(line).l2 |= 1 << uint(chip)
		})
	}
	for chip, c := range h.l3 {
		chip := chip
		c.ForEachLine(func(line memory.Addr, _ State) {
			ensure(line).l3 |= 1 << uint(chip)
		})
	}
	var err error
	h.pres.forEach(func(line memory.Addr, got *presEntry) {
		if err != nil {
			return
		}
		want := truth[line]
		if want == nil {
			err = fmt.Errorf("cache: presence table tracks line %#x {l2:%#x l3:%#x} that no cache holds",
				uint64(line), got.l2, got.l3)
			return
		}
		if got.l2 != want.l2 || got.l3 != want.l3 {
			err = fmt.Errorf("cache: line %#x presence {l2:%#x l3:%#x} != scan {l2:%#x l3:%#x l1:%#x}",
				uint64(line), got.l2, got.l3, want.l2, want.l3, want.l1)
		}
	})
	if err != nil {
		return err
	}
	for line, want := range truth {
		if h.pres.find(line) == nil {
			return fmt.Errorf("cache: caches hold line %#x {l1:%#x l2:%#x l3:%#x} the presence table does not track",
				uint64(line), want.l1, want.l2, want.l3)
		}
	}
	if len(truth) != h.pres.n {
		return fmt.Errorf("cache: presence table tracks %d lines, caches hold %d", h.pres.n, len(truth))
	}
	for chip := range h.lanes {
		sh := &h.lanes[chip].shard
		mask := h.chipCoreMask(chip)
		shardLines := 0
		sh.forEach(func(line memory.Addr, got *shardEntry) {
			if err != nil {
				return
			}
			shardLines++
			var want uint64
			if t := truth[line]; t != nil {
				want = t.l1 & mask
			}
			if got.l1 != want {
				err = fmt.Errorf("cache: line %#x chip %d shard l1 %#x != scan %#x",
					uint64(line), chip, got.l1, want)
				return
			}
			if got.owner != NoOwner && got.l1&(1<<uint(got.owner)) == 0 {
				err = fmt.Errorf("cache: line %#x owner core %d not an L1 sharer on chip %d (mask %#x)",
					uint64(line), got.owner, chip, got.l1)
			}
		})
		if err != nil {
			return err
		}
		wantLines := 0
		for _, t := range truth {
			if t.l1&mask != 0 {
				wantLines++
			}
		}
		if shardLines != wantLines {
			return fmt.Errorf("cache: chip %d shard tracks %d lines, its L1s hold %d", chip, shardLines, wantLines)
		}
	}
	// mailboxes must be empty between barriers.
	for chip := range h.lanes {
		if len(h.lanes[chip].ops) != 0 {
			return fmt.Errorf("cache: chip %d lane has %d unapplied coherence ops", chip, len(h.lanes[chip].ops))
		}
	}
	return nil
}

// holderChips returns the chips holding the line in L2 or L3 per the
// presence table, excluding except.
func holderChips(e *presEntry, except int) uint64 {
	return (e.l2 | e.l3) &^ (1 << uint(except))
}
