package cache

import (
	"fmt"
	"math/bits"

	"threadcluster/internal/memory"
)

// CoherenceMode selects how the hierarchy resolves coherence actions that
// span caches: snoops for a line another chip may hold, invalidations on a
// write, and downgrades on a remote read.
type CoherenceMode int

const (
	// CoherenceDirectory (the default) keeps a per-line sharers directory
	// — which cores hold the line in L1, which chips hold it in L2/L3 —
	// so every coherence action touches only the actual holders. Cost is
	// O(sharers) per action instead of O(cores + chips).
	CoherenceDirectory CoherenceMode = iota
	// CoherenceBroadcast resolves every coherence action by linearly
	// probing all cores' L1s and all chips' L2/L3s, like a bus-snooping
	// protocol. It is the reference implementation the directory is
	// differentially tested against.
	CoherenceBroadcast
)

func (m CoherenceMode) String() string {
	switch m {
	case CoherenceDirectory:
		return "directory"
	case CoherenceBroadcast:
		return "broadcast"
	}
	return fmt.Sprintf("CoherenceMode(%d)", int(m))
}

// ParseCoherenceMode maps a CLI/config string to a mode.
func ParseCoherenceMode(s string) (CoherenceMode, error) {
	switch s {
	case "directory":
		return CoherenceDirectory, nil
	case "broadcast":
		return CoherenceBroadcast, nil
	}
	return 0, fmt.Errorf("cache: unknown coherence mode %q (want directory or broadcast)", s)
}

// NoOwner marks a directory entry with no current write owner.
const NoOwner = -1

// dirEntry is the directory's view of one cache line. Bitmask width caps
// the directory at 64 cores and 64 chips; NewHierarchy falls back to
// broadcast beyond that.
type dirEntry struct {
	l1 uint64 // cores holding the line in their L1
	l2 uint64 // chips holding the line in their L2
	l3 uint64 // chips holding the line in their victim L3
	// owner is the core that most recently obtained write ownership of
	// the line (its L1 copy went Modified), or NoOwner. Diagnostic
	// metadata: coherence decisions use the presence masks.
	owner int8
}

func (e *dirEntry) empty() bool { return e.l1 == 0 && e.l2 == 0 && e.l3 == 0 }

// directory is the sharers directory for one Hierarchy: an open-addressed
// hash table from line address to dirEntry, with linear probing and
// backward-shift deletion. A custom table rather than a Go map because the
// directory sits on the miss path of every access: probes must not hash
// through runtime map machinery or allocate per line. Entries exist only
// for lines cached somewhere, so occupancy tracks live cache contents, not
// the address space.
type directory struct {
	keys []uint64   // line address + 1; 0 marks an empty slot
	ents []dirEntry // parallel to keys
	mask uint64     // len(keys) - 1
	n    int        // occupied slots
	peak int
}

const dirMinSize = 256

func newDirectory() *directory {
	return &directory{
		keys: make([]uint64, dirMinSize),
		ents: make([]dirEntry, dirMinSize),
		mask: dirMinSize - 1,
	}
}

// dirKey maps a line address to a nonzero table key. Lines are multiples
// of the line size, so +1 never collides with another line's key.
func dirKey(line memory.Addr) uint64 { return uint64(line) + 1 }

// slot hashes a key to its home slot (Fibonacci hashing).
func (d *directory) slot(k uint64) uint64 {
	return (k * 0x9E3779B97F4A7C15) >> 32 & d.mask
}

// find returns the entry for the line, or nil. The pointer is valid only
// until the next insert or delete.
func (d *directory) find(line memory.Addr) *dirEntry {
	k := dirKey(line)
	for i := d.slot(k); ; i = (i + 1) & d.mask {
		switch d.keys[i] {
		case k:
			return &d.ents[i]
		case 0:
			return nil
		}
	}
}

// ensure returns the entry for the line, creating it if absent. The
// pointer is valid only until the next insert or delete.
func (d *directory) ensure(line memory.Addr) *dirEntry {
	k := dirKey(line)
	for i := d.slot(k); ; i = (i + 1) & d.mask {
		switch d.keys[i] {
		case k:
			return &d.ents[i]
		case 0:
			// Grow at 50% load: probe chains stay short, and the table is
			// tiny next to the caches it mirrors.
			if uint64(d.n)*2 >= uint64(len(d.keys)) {
				d.grow()
				return d.ensure(line)
			}
			d.keys[i] = k
			d.ents[i] = dirEntry{owner: NoOwner}
			d.n++
			if d.n > d.peak {
				d.peak = d.n
			}
			return &d.ents[i]
		}
	}
}

func (d *directory) grow() {
	oldKeys, oldEnts := d.keys, d.ents
	size := uint64(len(oldKeys)) * 2
	d.keys = make([]uint64, size)
	d.ents = make([]dirEntry, size)
	d.mask = size - 1
	for i, k := range oldKeys {
		if k == 0 {
			continue
		}
		j := d.slot(k)
		for d.keys[j] != 0 {
			j = (j + 1) & d.mask
		}
		d.keys[j] = k
		d.ents[j] = oldEnts[i]
	}
}

// drop removes the line's entry if it no longer records any holder,
// backward-shifting the probe cluster so lookups stay tombstone-free.
func (d *directory) drop(line memory.Addr) {
	k := dirKey(line)
	i := d.slot(k)
	for d.keys[i] != k {
		if d.keys[i] == 0 {
			return
		}
		i = (i + 1) & d.mask
	}
	if !d.ents[i].empty() {
		return
	}
	d.n--
	j := i
	for {
		j = (j + 1) & d.mask
		if d.keys[j] == 0 {
			break
		}
		home := d.slot(d.keys[j])
		// The entry at j may move to i only if its home slot lies
		// cyclically at or before i (otherwise a lookup starting at home
		// would stop early at the vacated slot).
		if (i-home)&d.mask <= (j-home)&d.mask {
			d.keys[i] = d.keys[j]
			d.ents[i] = d.ents[j]
			i = j
		}
	}
	d.keys[i] = 0
}

// forEach visits every tracked line.
func (d *directory) forEach(f func(line memory.Addr, e *dirEntry)) {
	for i, k := range d.keys {
		if k != 0 {
			f(memory.Addr(k-1), &d.ents[i])
		}
	}
}

func (d *directory) setL1(line memory.Addr, core int) {
	d.ensure(line).l1 |= 1 << uint(core)
}

func (d *directory) clearL1(line memory.Addr, core int) {
	if e := d.find(line); e != nil {
		e.l1 &^= 1 << uint(core)
		if int(e.owner) == core {
			e.owner = NoOwner
		}
		if e.empty() {
			d.drop(line)
		}
	}
}

func (d *directory) setL2(line memory.Addr, chip int) {
	d.ensure(line).l2 |= 1 << uint(chip)
}

func (d *directory) clearL2(line memory.Addr, chip int) {
	if e := d.find(line); e != nil {
		e.l2 &^= 1 << uint(chip)
		if e.empty() {
			d.drop(line)
		}
	}
}

func (d *directory) setL3(line memory.Addr, chip int) {
	d.ensure(line).l3 |= 1 << uint(chip)
}

func (d *directory) clearL3(line memory.Addr, chip int) {
	if e := d.find(line); e != nil {
		e.l3 &^= 1 << uint(chip)
		if e.empty() {
			d.drop(line)
		}
	}
}

// DirectoryLines returns how many lines the coherence directory currently
// tracks (0 in broadcast mode) — the directory's occupancy.
func (h *Hierarchy) DirectoryLines() int {
	if h.dir == nil {
		return 0
	}
	return h.dir.n
}

// DirectoryPeakLines returns the largest occupancy the directory reached.
func (h *Hierarchy) DirectoryPeakLines() int {
	if h.dir == nil {
		return 0
	}
	return h.dir.peak
}

// SnoopProbesAvoided returns how many individual cache probes (L1/L2/L3
// set scans) the directory answered from its presence bits instead of
// issuing, relative to what the broadcast protocol would have scanned for
// the same access stream. Always 0 in broadcast mode.
func (h *Hierarchy) SnoopProbesAvoided() uint64 { return h.probesAvoided }

// Coherence returns the mode the hierarchy is actually running (a
// directory request on a machine wider than 64 cores or chips falls back
// to broadcast).
func (h *Hierarchy) Coherence() CoherenceMode { return h.mode }

// snoopDir answers a cross-chip snoop from the directory: the lowest-index
// chip other than exceptChip holding the line in L2, else in L3, else
// memory — exactly the order the broadcast scan resolves in.
func (h *Hierarchy) snoopDir(line memory.Addr, exceptChip int) (int, Source) {
	h.probesAvoided += uint64(2 * (len(h.l2) - 1))
	e := h.dir.find(line)
	if e == nil {
		return -1, SrcMemory
	}
	if m := e.l2 &^ (1 << uint(exceptChip)); m != 0 {
		return bits.TrailingZeros64(m), SrcRemoteL2
	}
	if m := e.l3 &^ (1 << uint(exceptChip)); m != 0 {
		return bits.TrailingZeros64(m), SrcRemoteL3
	}
	return -1, SrcMemory
}

// invalidateOthersDir removes every cached copy of the line outside the
// requesting core's L1 and the requesting chip's L2/L3, visiting only the
// holders the directory records.
func (h *Hierarchy) invalidateOthersDir(line memory.Addr, exceptCore, exceptChip int) {
	broadcastProbes := uint64(len(h.l1) - 1 + 2*(len(h.l2)-1))
	var probes uint64
	e := h.dir.find(line)
	if e == nil {
		h.probesAvoided += broadcastProbes
		return
	}
	for m := e.l1 &^ (1 << uint(exceptCore)); m != 0; m &= m - 1 {
		core := bits.TrailingZeros64(m)
		probes++
		if h.l1[core].Invalidate(line) != Invalid {
			h.invalidationsSent++
		}
		e.l1 &^= 1 << uint(core)
		if int(e.owner) == core {
			e.owner = NoOwner
		}
	}
	for m := e.l2 &^ (1 << uint(exceptChip)); m != 0; m &= m - 1 {
		chip := bits.TrailingZeros64(m)
		probes++
		if h.l2[chip].Invalidate(line) != Invalid {
			h.invalidationsSent++
		}
		e.l2 &^= 1 << uint(chip)
	}
	for m := e.l3 &^ (1 << uint(exceptChip)); m != 0; m &= m - 1 {
		chip := bits.TrailingZeros64(m)
		probes++
		if h.l3[chip].Invalidate(line) != Invalid {
			h.invalidationsSent++
		}
		e.l3 &^= 1 << uint(chip)
	}
	if e.empty() {
		h.dir.drop(line)
	}
	if broadcastProbes > probes {
		h.probesAvoided += broadcastProbes - probes
	}
}

// downgradeChipDir moves the line to Shared in the given chip's caches,
// touching only the holders the directory records.
func (h *Hierarchy) downgradeChipDir(line memory.Addr, chip int) {
	if chip < 0 {
		return
	}
	broadcastProbes := uint64(2 + h.topo.CoresPerChip)
	var probes uint64
	if e := h.dir.find(line); e != nil {
		bit := uint64(1) << uint(chip)
		if e.l2&bit != 0 {
			probes++
			h.l2[chip].Downgrade(line)
		}
		if e.l3&bit != 0 {
			probes++
			h.l3[chip].Downgrade(line)
		}
		chipCores := e.l1 & h.chipCoreMask(chip)
		for m := chipCores; m != 0; m &= m - 1 {
			core := bits.TrailingZeros64(m)
			probes++
			h.l1[core].Downgrade(line)
			if int(e.owner) == core {
				e.owner = NoOwner
			}
		}
	}
	if broadcastProbes > probes {
		h.probesAvoided += broadcastProbes - probes
	}
}

// purgeChipL1Dir invalidates the chip's L1 copies of an L2-evicted line
// (the inclusion purge), visiting only the cores the directory records as
// holders.
func (h *Hierarchy) purgeChipL1Dir(line memory.Addr, chip int) {
	broadcastProbes := uint64(h.topo.CoresPerChip)
	var probes uint64
	if e := h.dir.find(line); e != nil {
		for m := e.l1 & h.chipCoreMask(chip); m != 0; m &= m - 1 {
			core := bits.TrailingZeros64(m)
			probes++
			h.l1[core].Invalidate(line)
			e.l1 &^= 1 << uint(core)
			if int(e.owner) == core {
				e.owner = NoOwner
			}
		}
		if e.empty() {
			h.dir.drop(line)
		}
	}
	h.probesAvoided += broadcastProbes - probes
}

// setOwnerDir records write ownership for a line the requesting core just
// made Modified in its L1.
func (h *Hierarchy) setOwnerDir(line memory.Addr, core int) {
	h.dir.ensure(line).owner = int8(core)
}

// chipCoreMask returns the bitmask of global core ids on the given chip.
func (h *Hierarchy) chipCoreMask(chip int) uint64 {
	per := h.topo.CoresPerChip
	return ((uint64(1) << uint(per)) - 1) << uint(chip*per)
}

// CheckDirectory verifies the directory against a ground-truth scan of
// every cache's contents: each presence bit must correspond to a valid
// line and vice versa, and the owner (when set) must be a recorded L1
// sharer. Broadcast-mode hierarchies trivially pass. Tests and the fuzz
// target call it after operations; it is O(total cache capacity).
func (h *Hierarchy) CheckDirectory() error {
	if h.dir == nil {
		return nil
	}
	truth := make(map[memory.Addr]*dirEntry)
	ensure := func(line memory.Addr) *dirEntry {
		e := truth[line]
		if e == nil {
			e = &dirEntry{owner: NoOwner}
			truth[line] = e
		}
		return e
	}
	for core, c := range h.l1 {
		core := core
		c.ForEachLine(func(line memory.Addr, _ State) {
			ensure(line).l1 |= 1 << uint(core)
		})
	}
	for chip, c := range h.l2 {
		chip := chip
		c.ForEachLine(func(line memory.Addr, _ State) {
			ensure(line).l2 |= 1 << uint(chip)
		})
	}
	for chip, c := range h.l3 {
		chip := chip
		c.ForEachLine(func(line memory.Addr, _ State) {
			ensure(line).l3 |= 1 << uint(chip)
		})
	}
	if len(truth) != h.dir.n {
		return fmt.Errorf("cache: directory tracks %d lines, caches hold %d", h.dir.n, len(truth))
	}
	var err error
	h.dir.forEach(func(line memory.Addr, got *dirEntry) {
		if err != nil {
			return
		}
		want := truth[line]
		if want == nil {
			err = fmt.Errorf("cache: directory tracks line %#x that no cache holds", uint64(line))
			return
		}
		if got.l1 != want.l1 || got.l2 != want.l2 || got.l3 != want.l3 {
			err = fmt.Errorf("cache: line %#x directory {l1:%#x l2:%#x l3:%#x} != scan {l1:%#x l2:%#x l3:%#x}",
				uint64(line), got.l1, got.l2, got.l3, want.l1, want.l2, want.l3)
			return
		}
		if got.owner != NoOwner && got.l1&(1<<uint(got.owner)) == 0 {
			err = fmt.Errorf("cache: line %#x owner core %d not an L1 sharer (mask %#x)",
				uint64(line), got.owner, got.l1)
			return
		}
	})
	return err
}
