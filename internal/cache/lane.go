package cache

import (
	"math/bits"
	"slices"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

// This file implements the deferred slice-barrier coherence model that
// makes chip-parallel simulation deterministic.
//
// Every chip owns a Lane: the only handle through which that chip's CPUs
// access the hierarchy during a slice. A lane may immediately read and
// mutate chip-local state — the L1s of its own cores, its own L2 and
// victim L3, and its own directory shard — because no other lane ever
// touches them mid-slice. Anything that crosses a chip boundary (remote
// invalidations, downgrades, and the presence-table updates that make a
// fill visible to other chips' snoops) is queued as a mailbox op instead.
// Cross-chip *reads* (snoops) are answered from the presence table, which
// is frozen during a slice: it is only written when the mailboxes drain.
//
// At the end of a slice the driver calls Hierarchy.SliceBarrier, which
// drains every lane's mailbox with cross-chip effects applied *as if*
// serially in canonical chip order (chip 0 first, queue order within a
// chip). Because each lane's queue content depends only on the frozen
// pre-slice state and that lane's own access stream, and the barrier
// order is fixed, the post-barrier state is a pure function of the
// pre-slice state — independent of how many OS threads ran the lanes or
// in what real-time order they finished. That is the determinism
// argument, spelled out in DESIGN.md §7.
//
// The barrier does not literally walk the queues op by op: it gathers
// every lane's ops into one buffer, tags each with its canonical
// sequence number, sorts by (line, seq) and applies per-line runs, so
// the directory is probed once per line touched rather than once per op
// and all of a line's barrier work happens while its entry is hot.
// Barrier ops on *distinct* lines commute — each touches only its own
// line's presence entry, shard records and cached copies, and never
// inserts into a cache (no LRU or stamp movement) — so only the
// within-line order matters, and the seq tiebreak preserves exactly
// that. The one thing reordering could distort, the presence table's
// peak-occupancy high-water mark, is reconstructed exactly by replaying
// the per-op occupancy deltas in seq order (deltas are order-independent
// because within-line order is preserved). The op-by-op reference drain
// survives as sliceBarrierSerial, and the batched drain is
// differentially pinned against it.
//
// The classic serial protocol is the degenerate case: Hierarchy.Access
// runs one lane access followed immediately by a one-lane barrier, which
// makes every op visible before the next access exactly like the old
// immediate directory implementation (and is differentially tested
// against broadcast mode to stay byte-identical with it).

// opKind enumerates the cross-chip coherence mailbox operations.
type opKind uint8

const (
	// opInvalidateRemote invalidates every copy of the line outside the
	// issuing chip (write upgrade / read-with-intent-to-modify). The
	// issuing chip's own cores were already probed at queue time; probes
	// carries how many, for the broadcast-vs-directory probe accounting.
	opInvalidateRemote opKind = iota
	// opDowngradeChip moves one chip's copies of the line to Shared
	// (a read snoop hit on that chip).
	opDowngradeChip
	// opFillL2 publishes that the issuing chip's L2 now holds the line in
	// the given state. Conflicting same-slice fills are arbitrated here.
	opFillL2
	// opClearL2 publishes that the issuing chip's L2 evicted the line.
	opClearL2
	// opSetL3 publishes that the issuing chip's victim L3 accepted the line.
	opSetL3
	// opClearL3 publishes that the issuing chip's victim L3 gave up the line.
	opClearL3
)

// cohOp is one queued cross-chip coherence action.
type cohOp struct {
	line   memory.Addr
	kind   opKind
	state  State  // opFillL2: the fill state
	chip   int16  // opDowngradeChip: target chip
	probes uint16 // opInvalidateRemote: own-chip probes already issued
}

// Lane is one chip's access port into the hierarchy under the deferred
// coherence model. Distinct lanes may be driven from distinct goroutines
// within a slice; SliceBarrier must be called from a single goroutine
// with all lanes quiescent.
type Lane struct {
	h    *Hierarchy
	chip int

	// shard is this chip's slice of the coherence directory: per line,
	// which of the chip's cores hold it in L1 and which core owns it.
	shard lineTable[shardEntry]

	// ops is the outgoing coherence mailbox, drained at the barrier.
	ops []cohOp

	// Chip-local counter shards, merged by the Hierarchy getters.
	probesAvoided     uint64
	invalidationsSent uint64
	upgrades          uint64
	writebacks        uint64
	srcCounts         [NumSources]uint64
	srcCycles         [NumSources]uint64
}

// Lane returns the access port for the given chip. Valid only in
// directory mode (the broadcast reference protocol needs to probe other
// chips' caches synchronously and cannot defer).
func (h *Hierarchy) Lane(chip int) *Lane { return &h.lanes[chip] }

// Access performs one data access by a CPU of this lane's chip under
// deferred coherence, returning how it was satisfied. Cross-chip effects
// become visible at the next SliceBarrier.
func (l *Lane) Access(cpu topology.CPUID, addr memory.Addr, write bool) AccessResult {
	res := l.access(cpu, addr, write)
	l.srcCounts[res.Source]++
	l.srcCycles[res.Source] += res.Cycles
	return res
}

func (l *Lane) access(cpu topology.CPUID, addr memory.Addr, write bool) AccessResult {
	h := l.h
	line := memory.LineOf(addr)
	core := h.topo.CoreOf(cpu)
	chip := l.chip

	// L1 probe.
	if st := h.l1[core].Lookup(line); st != Invalid {
		if write && st == Shared {
			// Write upgrade: invalidate every other copy in the machine.
			l.upgrades++
			probes := l.invalidateOwnChip(line, core)
			l.queueOp(cohOp{line: line, kind: opInvalidateRemote, probes: probes})
			h.l1[core].SetState(line, Modified)
			h.l2[chip].SetState(line, Modified)
		} else if write {
			h.l1[core].SetState(line, Modified)
			h.l2[chip].SetState(line, Modified)
		}
		if write {
			l.setOwner(line, core)
		}
		return AccessResult{Line: line, Source: SrcL1, Cycles: h.lat.L1Hit}
	}

	// L2 probe (chip-local).
	if st := h.l2[chip].Lookup(line); st != Invalid {
		newState := st
		if write {
			if st == Shared {
				l.upgrades++
				probes := l.invalidateOwnChip(line, core)
				l.queueOp(cohOp{line: line, kind: opInvalidateRemote, probes: probes})
			}
			newState = Modified
			h.l2[chip].SetState(line, Modified)
		}
		l.fillL1(core, line, newState)
		return AccessResult{Line: line, Source: SrcL2, Cycles: h.lat.L2Hit, L1Miss: true}
	}

	// L3 probe (chip-local victim cache: a hit moves the line back to L2).
	if st := h.l3[chip].Peek(line); st != Invalid {
		h.l3[chip].Invalidate(line)
		l.queueOp(cohOp{line: line, kind: opClearL3})
		newState := st
		if write {
			if st == Shared {
				l.upgrades++
				probes := l.invalidateOwnChip(line, core)
				l.queueOp(cohOp{line: line, kind: opInvalidateRemote, probes: probes})
			}
			newState = Modified
		}
		l.fillL2(core, line, newState)
		l.fillL1(core, line, newState)
		return AccessResult{Line: line, Source: SrcL3, Cycles: h.lat.L3Hit, L1Miss: true}
	}

	// Cross-chip snoop, answered from the frozen presence table.
	remoteChip, remoteSrc := l.snoopFrozen(line)
	if remoteSrc != SrcMemory {
		var newState State
		if write {
			// Read-with-intent-to-modify: invalidate every remote copy.
			probes := l.invalidateOwnChip(line, core)
			l.queueOp(cohOp{line: line, kind: opInvalidateRemote, probes: probes})
			newState = Modified
		} else {
			// Remote sharer keeps a Shared copy; we take one too.
			l.queueOp(cohOp{line: line, kind: opDowngradeChip, chip: int16(remoteChip)})
			newState = Shared
		}
		l.fillL2(core, line, newState)
		l.fillL1(core, line, newState)
		lat := h.lat.RemoteL2
		if remoteSrc == SrcRemoteL3 {
			lat = h.lat.RemoteL3
		}
		return AccessResult{Line: line, Source: remoteSrc, Cycles: lat, L1Miss: true}
	}

	// Memory fill. Under NUMA configuration the line's home node decides
	// whether this is a local or remote memory access.
	st := Exclusive
	if write {
		st = Modified
	}
	l.fillL2(core, line, st)
	l.fillL1(core, line, st)
	src, lat := SrcMemory, h.lat.Memory
	if h.nodes != nil && h.lat.RemoteMemory != 0 && h.nodes.NodeOf(line)%h.topo.Chips != chip {
		src, lat = SrcRemoteMemory, h.lat.RemoteMemory
	}
	return AccessResult{Line: line, Source: src, Cycles: lat, L1Miss: true}
}

func (l *Lane) queueOp(op cohOp) { l.ops = append(l.ops, op) }

// snoopFrozen answers a cross-chip snoop from the presence table: the
// lowest-index chip other than ours holding the line in L2, else in L3,
// else memory — the order the broadcast scan resolves in. The table is
// written only at barriers, so concurrent lanes read a consistent frozen
// snapshot.
func (l *Lane) snoopFrozen(line memory.Addr) (int, Source) {
	h := l.h
	l.probesAvoided += uint64(2 * (len(h.l2) - 1))
	e := h.pres.find(line)
	if e == nil {
		return -1, SrcMemory
	}
	if m := e.l2 &^ (1 << uint(l.chip)); m != 0 {
		return bits.TrailingZeros64(m), SrcRemoteL2
	}
	if m := e.l3 &^ (1 << uint(l.chip)); m != 0 {
		return bits.TrailingZeros64(m), SrcRemoteL3
	}
	return -1, SrcMemory
}

// invalidateOwnChip invalidates the line in the L1s of this chip's other
// cores (the chip-local half of an invalidate-others; the remote half is
// queued). Returns how many probes it issued, for the op's accounting.
func (l *Lane) invalidateOwnChip(line memory.Addr, exceptCore int) uint16 {
	e := l.shard.find(line)
	if e == nil {
		return 0
	}
	var probes uint16
	for m := e.l1 &^ (1 << uint(exceptCore)); m != 0; m &= m - 1 {
		core := bits.TrailingZeros64(m)
		probes++
		if l.h.l1[core].Invalidate(line) != Invalid {
			l.invalidationsSent++
		}
		e.l1 &^= 1 << uint(core)
		if int(e.owner) == core {
			e.owner = NoOwner
		}
	}
	if e.empty() {
		l.shard.drop(line)
	}
	return probes
}

// purgeOwnL1 invalidates this chip's L1 copies of an L2-evicted line (the
// inclusion purge), visiting only the cores the shard records as holders.
func (l *Lane) purgeOwnL1(line memory.Addr) {
	broadcastProbes := uint64(l.h.topo.CoresPerChip)
	var probes uint64
	if e := l.shard.find(line); e != nil {
		for m := e.l1; m != 0; m &= m - 1 {
			core := bits.TrailingZeros64(m)
			probes++
			l.h.l1[core].Invalidate(line)
			e.l1 &^= 1 << uint(core)
			if int(e.owner) == core {
				e.owner = NoOwner
			}
		}
		if e.empty() {
			l.shard.drop(line)
		}
	}
	l.probesAvoided += broadcastProbes - probes
}

// fillL1 inserts the line into a core's L1 and maintains the shard. L1
// evictions are clean drops: the L2 above it is (approximately)
// inclusive, so the data survives.
func (l *Lane) fillL1(core int, line memory.Addr, st State) {
	evicted, _, didEvict := l.h.l1[core].Insert(line, st)
	if didEvict {
		l.shardClearL1(evicted, core)
	}
	l.shardSetL1(line, core)
	if st == Modified {
		l.setOwner(line, core)
	}
}

// fillL2 inserts the line into this chip's L2, spilling any eviction into
// the chip's victim L3 and maintaining L1 inclusion for evicted lines.
// The presence-table updates are queued in the exact order the serial
// protocol issued them, so occupancy (and its peak) evolves identically.
func (l *Lane) fillL2(core int, line memory.Addr, st State) {
	chip := l.chip
	evicted, evictedState, didEvict := l.h.l2[chip].Insert(line, st)
	l.queueOp(cohOp{line: line, kind: opFillL2, state: st})
	if !didEvict {
		return
	}
	l.queueOp(cohOp{line: evicted, kind: opClearL2})
	// Victim L3 receives the evicted line; what the L3 itself evicts
	// leaves the cache system, and dirty victims go back to memory.
	if l3Victim, l3State, l3Evict := l.h.l3[chip].Insert(evicted, evictedState); l3Evict {
		l.queueOp(cohOp{line: l3Victim, kind: opClearL3})
		if l3State == Modified {
			l.writebacks++
		}
	}
	l.queueOp(cohOp{line: evicted, kind: opSetL3})
	// Inclusion: an L2 eviction must purge the chip's L1s so a remote
	// chip's snoop (which only probes L2/L3) can never miss a live copy.
	l.purgeOwnL1(evicted)
}

func (l *Lane) shardSetL1(line memory.Addr, core int) {
	e := l.shard.ensure(line)
	if e.l1 == 0 {
		// Fresh entry (empty entries are always dropped): initialize owner.
		e.owner = NoOwner
	}
	e.l1 |= 1 << uint(core)
}

func (l *Lane) shardClearL1(line memory.Addr, core int) {
	if e := l.shard.find(line); e != nil {
		e.l1 &^= 1 << uint(core)
		if int(e.owner) == core {
			e.owner = NoOwner
		}
		if e.empty() {
			l.shard.drop(line)
		}
	}
}

// setOwner records write ownership for a line the requesting core just
// made Modified in its L1.
func (l *Lane) setOwner(line memory.Addr, core int) {
	l.shard.ensure(line).owner = int8(core)
}

// drainOp is one gathered mailbox op in the batched barrier drain: a
// cohOp stamped with its issuing chip and its canonical sequence number
// (position in the chip-order, queue-order-within-chip serial drain).
type drainOp struct {
	line   memory.Addr
	seq    uint32
	kind   opKind
	state  State
	src    int16 // issuing chip
	tgt    int16 // opDowngradeChip: target chip
	probes uint16
}

// peakEvent records that the op at canonical position seq changed the
// presence table's occupancy by delta (always ±1). Replayed in seq order
// after a batched drain to reconstruct the canonical peak.
type peakEvent struct {
	seq   uint32
	delta int8
}

// SliceBarrier drains every lane's coherence mailbox, making all
// cross-chip effects of the finished slice visible — byte-identical to
// an op-by-op drain in canonical chip order (see the file comment for
// why the batched application commutes). Must be called with no lane
// access in flight. A no-op in broadcast mode (which has no lanes).
func (h *Hierarchy) SliceBarrier() {
	h.drain = h.drain[:0]
	h.peakEvents = h.peakEvents[:0]
	var seq uint32
	for chip := range h.lanes {
		l := &h.lanes[chip]
		for i := range l.ops {
			op := &l.ops[i]
			h.drain = append(h.drain, drainOp{
				line: op.line, seq: seq, kind: op.kind, state: op.state,
				src: int16(chip), tgt: op.chip, probes: op.probes,
			})
			seq++
		}
		l.ops = l.ops[:0]
	}
	if len(h.drain) == 0 {
		return
	}
	slices.SortFunc(h.drain, func(a, b drainOp) int {
		if a.line != b.line {
			if a.line < b.line {
				return -1
			}
			return 1
		}
		return int(a.seq) - int(b.seq)
	})
	n0, peak0 := h.pres.n, h.pres.peak
	for i := 0; i < len(h.drain); {
		line := h.drain[i].line
		// One directory probe per line run; ops thread the entry through.
		e := h.pres.find(line)
		for ; i < len(h.drain) && h.drain[i].line == line; i++ {
			op := &h.drain[i]
			before := h.pres.n
			e = h.applyOpE(int(op.src), line, op.kind, op.state, int(op.tgt), op.probes, e)
			if d := h.pres.n - before; d != 0 {
				h.peakEvents = append(h.peakEvents, peakEvent{seq: op.seq, delta: int8(d)})
			}
		}
	}
	// The sorted application reached the same final occupancy as the
	// canonical order (per-op deltas are order-independent across lines),
	// but may have visited a different high-water mark. Replay the deltas
	// in canonical order to restore the exact serial-drain peak.
	slices.SortFunc(h.peakEvents, func(a, b peakEvent) int { return int(a.seq) - int(b.seq) })
	n, peak := n0, peak0
	for _, ev := range h.peakEvents {
		n += int(ev.delta)
		if n > peak {
			peak = n
		}
	}
	h.pres.peak = peak
	h.drain = h.drain[:0]
	h.peakEvents = h.peakEvents[:0]
}

// sliceBarrierSerial is the pre-batching reference drain: every lane's
// mailbox in canonical chip order, op by op. The batched SliceBarrier is
// differentially pinned against it (TestSliceBarrierBatchedVsSerial).
func (h *Hierarchy) sliceBarrierSerial() {
	for chip := range h.lanes {
		h.applyLane(&h.lanes[chip])
	}
}

// applyLane drains one lane's mailbox in queue order. The immediate-mode
// Access path still drains this way — one lane with a handful of ops has
// nothing to batch.
func (h *Hierarchy) applyLane(l *Lane) {
	for i := range l.ops {
		op := &l.ops[i]
		var e *presEntry
		if op.kind != opSetL3 {
			// opSetL3 touches the table only when the victim copy is live,
			// and then through ensure; probing upfront would waste a scan.
			e = h.pres.find(op.line)
		}
		h.applyOpE(l.chip, op.line, op.kind, op.state, int(op.chip), op.probes, e)
	}
	l.ops = l.ops[:0]
}

// applyOpE applies one coherence op given the line's current presence
// entry (nil when absent) and returns the entry afterwards (nil when the
// op dropped it). Threading the entry through is what lets the batched
// drain amortize the directory probe across a line's whole run.
func (h *Hierarchy) applyOpE(chip int, line memory.Addr, kind opKind, st State, tgt int, probes uint16, e *presEntry) *presEntry {
	switch kind {
	case opInvalidateRemote:
		return h.applyInvalidateRemote(chip, line, uint64(probes), e)
	case opDowngradeChip:
		h.applyDowngrade(line, tgt, e)
	case opFillL2:
		return h.applyFill(chip, line, st, e)
	case opClearL2:
		if e != nil {
			e.l2 &^= 1 << uint(chip)
			if e.empty() {
				h.pres.drop(line)
				return nil
			}
		}
	case opSetL3:
		// Publish only if the victim copy is still there: an earlier op
		// of this barrier may have invalidated it through the chip's
		// pre-slice L3 presence bit (see applyFill for the L2 analogue).
		if h.l3[chip].Peek(line) != Invalid {
			if e == nil {
				e = h.pres.ensure(line)
			}
			e.l3 |= 1 << uint(chip)
		}
	case opClearL3:
		if e != nil {
			e.l3 &^= 1 << uint(chip)
			if e.empty() {
				h.pres.drop(line)
				return nil
			}
		}
	}
	return e
}

// applyInvalidateRemote removes every cached copy of the line outside the
// issuing chip, visiting only the holders the directory records, and
// settles the broadcast-vs-directory probe accounting (ownProbes L1
// probes were already issued chip-locally at queue time). The caller
// supplies the line's presence entry; the survivor (or nil) is returned.
func (h *Hierarchy) applyInvalidateRemote(except int, line memory.Addr, ownProbes uint64, e *presEntry) *presEntry {
	broadcastProbes := uint64(len(h.l1) - 1 + 2*(len(h.l2)-1))
	probes := ownProbes
	if e != nil {
		probes += h.invalidateHolders(line, e, except)
		if e.empty() {
			h.pres.drop(line)
			e = nil
		}
	}
	if broadcastProbes > probes {
		h.probesAvoided += broadcastProbes - probes
	}
	return e
}

// invalidateHolders invalidates every recorded copy of the line outside
// the excepted chip — remote L1s (via the holder chips' shards), L2s and
// L3s — clearing the corresponding presence bits. It returns how many
// cache probes it issued. The caller drops the presence entry if the line
// is gone.
func (h *Hierarchy) invalidateHolders(line memory.Addr, e *presEntry, except int) uint64 {
	var probes uint64
	for m := holderChips(e, except); m != 0; m &= m - 1 {
		chip := bits.TrailingZeros64(m)
		if sh := h.lanes[chip].shard.find(line); sh != nil {
			for cm := sh.l1; cm != 0; cm &= cm - 1 {
				core := bits.TrailingZeros64(cm)
				probes++
				if h.l1[core].Invalidate(line) != Invalid {
					h.invalidationsSent++
				}
			}
			h.lanes[chip].shard.drop(line)
		}
		bit := uint64(1) << uint(chip)
		if e.l2&bit != 0 {
			probes++
			if h.l2[chip].Invalidate(line) != Invalid {
				h.invalidationsSent++
			}
			e.l2 &^= bit
		}
		if e.l3&bit != 0 {
			probes++
			if h.l3[chip].Invalidate(line) != Invalid {
				h.invalidationsSent++
			}
			e.l3 &^= bit
		}
	}
	return probes
}

// applyDowngrade moves the line to Shared in the given chip's caches,
// touching only recorded holders, with the usual probe accounting. The
// caller supplies the line's presence entry (downgrades never change
// presence, so there is nothing to return).
func (h *Hierarchy) applyDowngrade(line memory.Addr, chip int, e *presEntry) {
	if chip < 0 {
		return
	}
	broadcastProbes := uint64(2 + h.topo.CoresPerChip)
	probes := h.downgradeChipCopies(line, chip, e)
	if broadcastProbes > probes {
		h.probesAvoided += broadcastProbes - probes
	}
}

// downgradeChipCopies moves one chip's recorded copies of the line to
// Shared and returns how many probes that took. Presence bits are
// unchanged (the chip keeps Shared copies).
func (h *Hierarchy) downgradeChipCopies(line memory.Addr, chip int, e *presEntry) uint64 {
	var probes uint64
	if e != nil {
		bit := uint64(1) << uint(chip)
		if e.l2&bit != 0 {
			probes++
			h.l2[chip].Downgrade(line)
		}
		if e.l3&bit != 0 {
			probes++
			h.l3[chip].Downgrade(line)
		}
	}
	if sh := h.lanes[chip].shard.find(line); sh != nil {
		for m := sh.l1; m != 0; m &= m - 1 {
			core := bits.TrailingZeros64(m)
			probes++
			h.l1[core].Downgrade(line)
			if int(sh.owner) == core {
				sh.owner = NoOwner
			}
		}
	}
	return probes
}

// applyFill publishes a chip's L2 fill in the presence table, arbitrating
// fills of the same line by different chips within one slice. The serial
// protocol never queues a conflicting fill (each access sees the previous
// one's barrier), so this arbitration only runs — deterministically, in
// canonical chip order — under parallel slices:
//
//   - A Modified fill that meets surviving holders is a write that raced
//     with other chips' copies: the writer wins the arbitration and the
//     other copies are invalidated, exactly as if the write had been
//     ordered after them. (Two conflicting same-slice write upgrades
//     therefore annihilate each other's copies; the later chip's write is
//     the one that sticks.)
//   - An Exclusive fill that meets holders means two chips each fetched
//     the line believing nobody held it: all copies — including the
//     filling chip's fresh one — settle in Shared, as if the fills had
//     been ordered back-to-back reads.
//   - A Shared fill co-exists with other holders by definition.
//
// The fill is published with the L2's state *now*, not the state at queue
// time: an earlier op of this same barrier may have downgraded the copy
// (another chip's read → it settles Shared) or invalidated it outright
// (another chip's conflicting write saw this chip's pre-slice presence
// bit — e.g. the line was evicted and re-fetched within the slice). A
// dead fill publishes nothing; its L1/shard records were already torn
// down by the invalidation that killed it.
//
// The caller supplies the line's presence entry; the published entry is
// returned (nil only when the fill was dead and the line untracked).
func (h *Hierarchy) applyFill(chip int, line memory.Addr, st State, e *presEntry) *presEntry {
	switch cur := h.l2[chip].Peek(line); cur {
	case Invalid:
		return e
	default:
		st = cur
	}
	bit := uint64(1) << uint(chip)
	if e != nil && holderChips(e, chip) != 0 {
		switch st {
		case Modified:
			h.invalidateHolders(line, e, chip)
			// The entry cannot be empty: the filling chip's bit is set next.
		case Exclusive:
			for m := e.l2 | e.l3; m != 0; m &= m - 1 {
				h.downgradeChipCopies(line, bits.TrailingZeros64(m), e)
			}
			// The filling chip's own fresh copies are not yet published in
			// the presence table; downgrade them directly (L1s via shard).
			h.l2[chip].Downgrade(line)
			if sh := h.lanes[chip].shard.find(line); sh != nil {
				for m := sh.l1; m != 0; m &= m - 1 {
					h.l1[bits.TrailingZeros64(m)].Downgrade(line)
				}
			}
		}
	}
	if e == nil {
		e = h.pres.ensure(line)
	}
	e.l2 |= bit
	return e
}
