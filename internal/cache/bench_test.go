package cache

import (
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

func benchHierarchy(b *testing.B) *Hierarchy {
	b.Helper()
	h, err := NewHierarchy(topology.OpenPower720(), topology.DefaultLatencies(), Power5Config())
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkAccessL1Hit(b *testing.B) {
	h := benchHierarchy(b)
	addr := memory.Addr(0x10000)
	h.Access(0, addr, false)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, addr, false)
	}
}

func BenchmarkAccessL2Hit(b *testing.B) {
	h := benchHierarchy(b)
	addrs := make([]memory.Addr, 1024)
	for i := range addrs {
		addrs[i] = memory.Addr(0x100000 + i*memory.LineSize)
		h.Access(0, addrs[i], false) // fill L2 via core 0
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate cores on one chip so L1 misses but L2 hits.
		h.Access(topology.CPUID(2*(i%2)), addrs[i%len(addrs)], false)
	}
}

func BenchmarkAccessCrossChipPingPong(b *testing.B) {
	h := benchHierarchy(b)
	addr := memory.Addr(0x200000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := topology.CPUID(0)
		if i%2 == 0 {
			cpu = 4
		}
		h.Access(cpu, addr, true)
	}
}

func BenchmarkAccessMemoryStream(b *testing.B) {
	h := benchHierarchy(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, memory.Addr(uint64(i)*memory.LineSize), false)
	}
}

// BenchmarkHierarchyAccess is the canonical hot-path number: a
// sharing-heavy mixed stream (the coherence differential workload) through
// the default directory hierarchy on the 32-way machine. The allocation
// column must read 0 — TestAccessZeroAlloc enforces the same property as a
// test.
func BenchmarkHierarchyAccess(b *testing.B) {
	topo := topology.Power5_32Way()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), SmallConfig())
	if err != nil {
		b.Fatal(err)
	}
	ops := coherenceOps(topo, 1<<16)
	for _, op := range ops {
		h.Access(op.cpu, op.addr, op.write) // warm: size tables and mailboxes
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i&(1<<16-1)]
		h.Access(op.cpu, op.addr, op.write)
	}
}

// coherenceOps pre-generates a deterministic sharing-heavy access stream:
// every CPU touches a working set larger than the caches, half the
// accesses land in a shared region and a third of those are writes, so
// the stream is dominated by cross-chip snoops, invalidations and
// inclusion purges — the operations whose cost the coherence
// implementation decides.
type coherenceOp struct {
	cpu   topology.CPUID
	addr  memory.Addr
	write bool
}

func coherenceOps(topo topology.Topology, n int) []coherenceOp {
	w := newDiffWorkload(topo, 2*topo.NumCPUs(), 96, 1)
	ops := make([]coherenceOp, n)
	for i := range ops {
		cpu, addr, write := w.step()
		ops[i] = coherenceOp{cpu: cpu, addr: addr, write: write}
	}
	return ops
}

func benchCoherence(b *testing.B, topo topology.Topology, mode CoherenceMode) {
	// Power5 associativities (Table 1: 4-way L1, 10-way L2, 12-way L3) at
	// test-scale sizes, so broadcast pays realistic set-scan costs while
	// the working set still forces misses.
	cfg := HierarchyConfig{
		L1:        Config{SizeBytes: 4 << 10, Ways: 4},
		L2:        Config{SizeBytes: 40 << 10, Ways: 10},
		L3:        Config{SizeBytes: 192 << 10, Ways: 12},
		Coherence: mode,
	}
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	ops := coherenceOps(topo, 1<<16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i&(1<<16-1)]
		h.Access(op.cpu, op.addr, op.write)
	}
}

// The broadcast-vs-directory pairs below are the regression guard: `make
// bench-compare` compares them against BENCH_coherence.json. The SoA
// cache rewrite cut broadcast's snoop scans ~2x, so the two modes now
// measure within noise of each other at these cache sizes; the committed
// floors guard against the directory badly regressing, and the
// directory's O(sharers) win shows up in SnoopProbesAvoided rather than
// wall clock (DESIGN.md §7, "What it costs").
func BenchmarkCoherenceBroadcast32Way(b *testing.B) {
	benchCoherence(b, topology.Power5_32Way(), CoherenceBroadcast)
}

func BenchmarkCoherenceDirectory32Way(b *testing.B) {
	benchCoherence(b, topology.Power5_32Way(), CoherenceDirectory)
}

func BenchmarkCoherenceBroadcastOpen720(b *testing.B) {
	benchCoherence(b, topology.OpenPower720(), CoherenceBroadcast)
}

func BenchmarkCoherenceDirectoryOpen720(b *testing.B) {
	benchCoherence(b, topology.OpenPower720(), CoherenceDirectory)
}

func BenchmarkSetAssocLookup(b *testing.B) {
	c, err := NewSetAssoc(Power5Config().L2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		c.Insert(memory.Addr(i*memory.LineSize), Shared)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(memory.Addr((i % 4096) * memory.LineSize))
	}
}
