package cache

import (
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

func benchHierarchy(b *testing.B) *Hierarchy {
	b.Helper()
	h, err := NewHierarchy(topology.OpenPower720(), topology.DefaultLatencies(), Power5Config())
	if err != nil {
		b.Fatal(err)
	}
	return h
}

func BenchmarkAccessL1Hit(b *testing.B) {
	h := benchHierarchy(b)
	addr := memory.Addr(0x10000)
	h.Access(0, addr, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, addr, false)
	}
}

func BenchmarkAccessL2Hit(b *testing.B) {
	h := benchHierarchy(b)
	addrs := make([]memory.Addr, 1024)
	for i := range addrs {
		addrs[i] = memory.Addr(0x100000 + i*memory.LineSize)
		h.Access(0, addrs[i], false) // fill L2 via core 0
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Alternate cores on one chip so L1 misses but L2 hits.
		h.Access(topology.CPUID(2*(i%2)), addrs[i%len(addrs)], false)
	}
}

func BenchmarkAccessCrossChipPingPong(b *testing.B) {
	h := benchHierarchy(b)
	addr := memory.Addr(0x200000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cpu := topology.CPUID(0)
		if i%2 == 0 {
			cpu = 4
		}
		h.Access(cpu, addr, true)
	}
}

func BenchmarkAccessMemoryStream(b *testing.B) {
	h := benchHierarchy(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Access(0, memory.Addr(uint64(i)*memory.LineSize), false)
	}
}

func BenchmarkSetAssocLookup(b *testing.B) {
	c, err := NewSetAssoc(Power5Config().L2)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 4096; i++ {
		c.Insert(memory.Addr(i*memory.LineSize), Shared)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Lookup(memory.Addr((i % 4096) * memory.LineSize))
	}
}
