package cache

import (
	"fmt"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

// Source says which level of the hierarchy satisfied an access. Local means
// "on the same chip as the requesting CPU" (the paper treats the directly
// attached off-chip L3 as local too); Remote means "on any other chip".
type Source int

const (
	// SrcL1 is a hit in the core's own L1 data cache.
	SrcL1 Source = iota
	// SrcL2 is a hit in the chip-local L2.
	SrcL2
	// SrcL3 is a hit in the chip-local victim L3.
	SrcL3
	// SrcRemoteL2 is a transfer from another chip's L2.
	SrcRemoteL2
	// SrcRemoteL3 is a transfer from another chip's L3.
	SrcRemoteL3
	// SrcMemory is a fill from the local chip's memory (or from memory
	// generally when the hierarchy is not NUMA-configured).
	SrcMemory
	// SrcRemoteMemory is a fill from another chip's memory controller
	// (NUMA mode only).
	SrcRemoteMemory
	// NumSources is the number of distinct sources.
	NumSources int = iota
)

func (s Source) String() string {
	switch s {
	case SrcL1:
		return "L1"
	case SrcL2:
		return "L2"
	case SrcL3:
		return "L3"
	case SrcRemoteL2:
		return "remote-L2"
	case SrcRemoteL3:
		return "remote-L3"
	case SrcMemory:
		return "memory"
	case SrcRemoteMemory:
		return "remote-memory"
	}
	return fmt.Sprintf("Source(%d)", int(s))
}

// Remote reports whether the source is a *remote cache* — the event class
// the paper's base scheme samples. Remote memory is classified separately
// (Section 8's NUMA extension samples it too).
func (s Source) Remote() bool { return s == SrcRemoteL2 || s == SrcRemoteL3 }

// CrossChip reports whether satisfying the access crossed a chip
// boundary at all (remote cache or remote memory).
func (s Source) CrossChip() bool { return s.Remote() || s == SrcRemoteMemory }

// AccessResult describes how one data access was satisfied.
type AccessResult struct {
	// Line is the cache line the access touched.
	Line memory.Addr
	// Source is the level that satisfied the access.
	Source Source
	// Cycles is the latency charged for the access.
	Cycles uint64
	// L1Miss reports whether the access missed the L1 (every source other
	// than SrcL1). The PMU's continuous sampling register is updated on L1
	// misses, so this drives sampling.
	L1Miss bool
}

// HierarchyConfig sizes the three cache levels and selects the coherence
// implementation. The zero value of the sizing fields is not usable; use
// Power5Config for the paper's platform (Table 1). The zero Coherence is
// CoherenceDirectory, so existing configurations get the directory fast
// path by default.
type HierarchyConfig struct {
	L1 Config // per core
	L2 Config // per chip
	L3 Config // per chip (victim)
	// Coherence picks the protocol implementation: CoherenceDirectory
	// (default, O(sharers) coherence actions, supports deferred
	// slice-barrier execution via Lane) or CoherenceBroadcast (reference
	// linear scans). Access-for-access the two are observably identical;
	// machines wider than 64 cores or 64 chips silently run broadcast.
	Coherence CoherenceMode
}

// Power5Config returns Table 1's cache sizes: 64 KB 4-way L1 data cache per
// core, 2 MB 10-way L2 per chip, 36 MB 12-way victim L3 per chip.
func Power5Config() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{SizeBytes: 64 << 10, Ways: 4},
		L2: Config{SizeBytes: 2 << 20, Ways: 10},
		L3: Config{SizeBytes: 36 << 20, Ways: 12},
	}
}

// SmallConfig returns a deliberately tiny hierarchy for tests that need to
// force capacity evictions quickly.
func SmallConfig() HierarchyConfig {
	return HierarchyConfig{
		L1: Config{SizeBytes: 4 << 10, Ways: 2},
		L2: Config{SizeBytes: 16 << 10, Ways: 4},
		L3: Config{SizeBytes: 64 << 10, Ways: 4},
	}
}

// Hierarchy is the machine-wide cache system: one L1 per core, one L2 and
// one victim L3 per chip, kept coherent with an invalidation protocol.
//
// Access and every query method are single-threaded, the way a
// cycle-interleaved machine serializes its buses. In directory mode the
// hierarchy additionally supports the deferred slice-barrier model (see
// lane.go): distinct chips' Lanes may be driven from distinct goroutines
// between SliceBarrier calls, which is what the chip-parallel simulator
// engine uses. Query methods (counters, occupancy, CheckDirectory) are
// only meaningful at barrier boundaries.
type Hierarchy struct {
	topo topology.Topology  //tclint:allow snapfields -- construction config; RestoreMachine rebuilds it and the restore validates against it
	lat  topology.Latencies //tclint:allow snapfields -- construction config, immutable after NewHierarchy
	l1   []*SetAssoc        // indexed by global core id
	l2   []*SetAssoc        // indexed by chip
	l3   []*SetAssoc        // indexed by chip

	// mode is the effective coherence implementation. In directory mode
	// pres is the machine-wide chip-presence table (written only at
	// barriers) and lanes holds one access port + directory shard per
	// chip; both are unused in broadcast mode. probesAvoided counts cache
	// probes the directory answered from presence bits instead of
	// scanning (barrier-side shard; lanes carry the rest).
	mode          CoherenceMode
	pres          lineTable[presEntry]
	lanes         []Lane
	probesAvoided uint64

	// Batched-barrier scratch, reused across SliceBarrier calls so the
	// drain stays allocation-free. Both are empty whenever the hierarchy
	// is quiescent (between barriers), which is the only time snapshots
	// are taken.
	drain      []drainOp   //tclint:allow snapfields -- transient barrier scratch, always empty at snapshot points
	peakEvents []peakEvent //tclint:allow snapfields -- transient barrier scratch, always empty at snapshot points

	// coherence traffic counters (base shard: broadcast mode and
	// barrier-applied actions; Lane carries chip-local shards).
	invalidationsSent uint64
	upgrades          uint64
	writebacks        uint64 // dirty lines evicted from the last level

	// srcCounts attributes every access to the source that satisfied it,
	// and srcCycles the latency charged per source — the raw material of
	// the per-source miss-attribution metrics. Base shard; Lane carries
	// the chip-local shards.
	srcCounts [NumSources]uint64
	srcCycles [NumSources]uint64

	// NUMA configuration: nil means uniform memory (the base platform).
	nodes memory.NodeMap //tclint:allow snapfields -- construction config, immutable after NewHierarchy
}

// NewHierarchy builds the cache system for a topology.
func NewHierarchy(topo topology.Topology, lat topology.Latencies, cfg HierarchyConfig) (*Hierarchy, error) {
	if err := topo.Validate(); err != nil {
		return nil, err
	}
	if err := lat.Validate(); err != nil {
		return nil, err
	}
	h := &Hierarchy{topo: topo, lat: lat}
	for core := 0; core < topo.NumCores(); core++ {
		c, err := NewSetAssoc(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("cache: L1 for core %d: %w", core, err)
		}
		h.l1 = append(h.l1, c)
	}
	for chip := 0; chip < topo.Chips; chip++ {
		l2, err := NewSetAssoc(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("cache: L2 for chip %d: %w", chip, err)
		}
		l3, err := NewSetAssoc(cfg.L3)
		if err != nil {
			return nil, fmt.Errorf("cache: L3 for chip %d: %w", chip, err)
		}
		h.l2 = append(h.l2, l2)
		h.l3 = append(h.l3, l3)
	}
	h.mode = cfg.Coherence
	if h.mode == CoherenceDirectory && (topo.NumCores() > 64 || topo.Chips > 64) {
		h.mode = CoherenceBroadcast
	}
	if h.mode == CoherenceDirectory {
		h.pres.init()
		h.lanes = make([]Lane, topo.Chips)
		for chip := range h.lanes {
			h.lanes[chip].h = h
			h.lanes[chip].chip = chip
			h.lanes[chip].shard.init()
		}
	}
	return h, nil
}

// Topology returns the machine shape the hierarchy was built for.
func (h *Hierarchy) Topology() topology.Topology { return h.topo }

// Latencies returns the latency ladder in use.
func (h *Hierarchy) Latencies() topology.Latencies { return h.lat }

// L1 returns the L1 cache of the given global core (for tests and stats).
func (h *Hierarchy) L1(core int) *SetAssoc { return h.l1[core] }

// L2 returns the L2 cache of the given chip.
func (h *Hierarchy) L2(chip int) *SetAssoc { return h.l2[chip] }

// L3 returns the victim L3 cache of the given chip.
func (h *Hierarchy) L3(chip int) *SetAssoc { return h.l3[chip] }

// InvalidationsSent returns how many line invalidations coherence issued.
func (h *Hierarchy) InvalidationsSent() uint64 {
	s := h.invalidationsSent
	for i := range h.lanes {
		s += h.lanes[i].invalidationsSent
	}
	return s
}

// Upgrades returns how many Shared->Modified write upgrades occurred.
func (h *Hierarchy) Upgrades() uint64 {
	s := h.upgrades
	for i := range h.lanes {
		s += h.lanes[i].upgrades
	}
	return s
}

// Writebacks returns how many dirty lines were written back to memory
// (Modified lines evicted from the last-level cache).
func (h *Hierarchy) Writebacks() uint64 {
	s := h.writebacks
	for i := range h.lanes {
		s += h.lanes[i].writebacks
	}
	return s
}

// SourceCounts returns how many accesses each source satisfied since
// construction, indexed by Source.
func (h *Hierarchy) SourceCounts() [NumSources]uint64 {
	s := h.srcCounts
	for i := range h.lanes {
		for src, n := range h.lanes[i].srcCounts {
			s[src] += n
		}
	}
	return s
}

// SourceCycles returns the total latency cycles charged per source since
// construction, indexed by Source.
func (h *Hierarchy) SourceCycles() [NumSources]uint64 {
	s := h.srcCycles
	for i := range h.lanes {
		for src, n := range h.lanes[i].srcCycles {
			s[src] += n
		}
	}
	return s
}

// Access performs one data access by the given CPU and returns how it was
// satisfied. Writes invalidate every other cached copy of the line
// (invalidation-based coherence); reads leave remote copies in Shared
// state. The returned latency follows the Figure 1 ladder.
//
// In directory mode this is the degenerate case of the deferred model:
// one lane access followed by an immediate barrier, so every coherence
// effect is visible before the next access, exactly like the broadcast
// reference protocol.
func (h *Hierarchy) Access(cpu topology.CPUID, addr memory.Addr, write bool) AccessResult {
	if h.mode == CoherenceDirectory {
		l := &h.lanes[h.topo.ChipOf(cpu)]
		res := l.access(cpu, addr, write)
		l.srcCounts[res.Source]++
		l.srcCycles[res.Source] += res.Cycles
		h.applyLane(l)
		return res
	}
	res := h.access(cpu, addr, write)
	h.srcCounts[res.Source]++
	h.srcCycles[res.Source] += res.Cycles
	return res
}

// access is the broadcast reference implementation: every coherence
// action linearly probes all cores' L1s and all chips' L2/L3s.
func (h *Hierarchy) access(cpu topology.CPUID, addr memory.Addr, write bool) AccessResult {
	line := memory.LineOf(addr)
	core := h.topo.CoreOf(cpu)
	chip := h.topo.ChipOf(cpu)

	// L1 probe.
	if st := h.l1[core].Lookup(line); st != Invalid {
		if write && st == Shared {
			// Write upgrade: invalidate every other copy in the machine.
			h.upgrades++
			h.invalidateOthers(line, core, chip)
			h.l1[core].SetState(line, Modified)
			h.l2[chip].SetState(line, Modified)
		} else if write {
			h.l1[core].SetState(line, Modified)
			h.l2[chip].SetState(line, Modified)
		}
		return AccessResult{Line: line, Source: SrcL1, Cycles: h.lat.L1Hit}
	}

	// L2 probe (chip-local).
	if st := h.l2[chip].Lookup(line); st != Invalid {
		newState := st
		if write {
			if st == Shared {
				h.upgrades++
				h.invalidateOthers(line, core, chip)
			}
			newState = Modified
			h.l2[chip].SetState(line, Modified)
		}
		h.fillL1(core, line, newState)
		return AccessResult{Line: line, Source: SrcL2, Cycles: h.lat.L2Hit, L1Miss: true}
	}

	// L3 probe (chip-local victim cache: a hit moves the line back to L2).
	if st := h.l3[chip].Peek(line); st != Invalid {
		h.l3[chip].Invalidate(line)
		newState := st
		if write {
			if st == Shared {
				h.upgrades++
				h.invalidateOthers(line, core, chip)
			}
			newState = Modified
		}
		h.fillL2(chip, line, newState)
		h.fillL1(core, line, newState)
		return AccessResult{Line: line, Source: SrcL3, Cycles: h.lat.L3Hit, L1Miss: true}
	}

	// Cross-chip snoop: another chip's L2, then another chip's L3.
	remoteChip, remoteSrc := h.snoop(line, chip)
	if remoteSrc != SrcMemory {
		var newState State
		if write {
			// Read-with-intent-to-modify: invalidate every remote copy.
			h.invalidateOthers(line, core, chip)
			newState = Modified
		} else {
			// Remote sharer keeps a Shared copy; we take one too.
			h.downgradeChip(line, remoteChip)
			newState = Shared
		}
		h.fillL2(chip, line, newState)
		h.fillL1(core, line, newState)
		lat := h.lat.RemoteL2
		if remoteSrc == SrcRemoteL3 {
			lat = h.lat.RemoteL3
		}
		return AccessResult{Line: line, Source: remoteSrc, Cycles: lat, L1Miss: true}
	}

	// Memory fill. Under NUMA configuration the line's home node decides
	// whether this is a local or remote memory access.
	st := Exclusive
	if write {
		st = Modified
	}
	h.fillL2(chip, line, st)
	h.fillL1(core, line, st)
	src, lat := SrcMemory, h.lat.Memory
	if h.nodes != nil && h.lat.RemoteMemory != 0 && h.nodes.NodeOf(line)%h.topo.Chips != chip {
		src, lat = SrcRemoteMemory, h.lat.RemoteMemory
	}
	return AccessResult{Line: line, Source: src, Cycles: lat, L1Miss: true}
}

// SetNUMA configures per-chip memory homing: fills whose line is homed on
// another chip's memory cost Latencies.RemoteMemory and are attributed to
// SrcRemoteMemory. Passing nil reverts to uniform memory.
func (h *Hierarchy) SetNUMA(nodes memory.NodeMap) { h.nodes = nodes }

// snoop looks for the line in any other chip's L2 or L3 and returns the
// owning chip and the source class, or SrcMemory if no chip holds it.
// L2s are probed across all chips before L3s, mirroring the point-to-point
// fabric's preference for the faster source.
func (h *Hierarchy) snoop(line memory.Addr, exceptChip int) (int, Source) {
	for chip := range h.l2 {
		if chip == exceptChip {
			continue
		}
		if h.l2[chip].Peek(line) != Invalid {
			return chip, SrcRemoteL2
		}
	}
	for chip := range h.l3 {
		if chip == exceptChip {
			continue
		}
		if h.l3[chip].Peek(line) != Invalid {
			return chip, SrcRemoteL3
		}
	}
	return -1, SrcMemory
}

// invalidateOthers removes every cached copy of the line outside the
// requesting core's L1 and the requesting chip's L2/L3.
func (h *Hierarchy) invalidateOthers(line memory.Addr, exceptCore, exceptChip int) {
	for core := range h.l1 {
		if core == exceptCore {
			continue
		}
		if h.l1[core].Invalidate(line) != Invalid {
			h.invalidationsSent++
		}
	}
	for chip := range h.l2 {
		if chip == exceptChip {
			continue
		}
		if h.l2[chip].Invalidate(line) != Invalid {
			h.invalidationsSent++
		}
		if h.l3[chip].Invalidate(line) != Invalid {
			h.invalidationsSent++
		}
	}
}

// downgradeChip moves the line to Shared in the given chip's caches (and
// the L1s of its cores), modelling a read snoop hit.
func (h *Hierarchy) downgradeChip(line memory.Addr, chip int) {
	if chip < 0 {
		return
	}
	h.l2[chip].Downgrade(line)
	h.l3[chip].Downgrade(line)
	for core := chip * h.topo.CoresPerChip; core < (chip+1)*h.topo.CoresPerChip; core++ {
		h.l1[core].Downgrade(line)
	}
}

// fillL1 inserts the line into a core's L1. L1 evictions are clean drops:
// the L2 above it is (approximately) inclusive, so the data survives.
func (h *Hierarchy) fillL1(core int, line memory.Addr, st State) {
	h.l1[core].Insert(line, st)
}

// fillL2 inserts the line into a chip's L2, spilling any eviction into the
// chip's victim L3 and maintaining L1 inclusion for evicted lines.
func (h *Hierarchy) fillL2(chip int, line memory.Addr, st State) {
	evicted, evictedState, didEvict := h.l2[chip].Insert(line, st)
	if !didEvict {
		return
	}
	// Victim L3 receives the evicted line; what the L3 itself evicts
	// leaves the cache system, and dirty victims go back to memory.
	if _, l3State, l3Evict := h.l3[chip].Insert(evicted, evictedState); l3Evict {
		if l3State == Modified {
			h.writebacks++
		}
	}
	// Inclusion: an L2 eviction must purge the chip's L1s so a remote
	// chip's snoop (which only probes L2/L3) can never miss a live copy.
	for c := chip * h.topo.CoresPerChip; c < (chip+1)*h.topo.CoresPerChip; c++ {
		h.l1[c].Invalidate(evicted)
	}
}

// FlushAll empties every cache, modelling the cold state after a machine
// reset. Useful between experiment phases.
func (h *Hierarchy) FlushAll() {
	cfgOf := func(c *SetAssoc) Config { return c.Config() }
	for i, c := range h.l1 {
		nc, _ := NewSetAssoc(cfgOf(c))
		h.l1[i] = nc
	}
	for i, c := range h.l2 {
		nc, _ := NewSetAssoc(cfgOf(c))
		h.l2[i] = nc
	}
	for i, c := range h.l3 {
		nc, _ := NewSetAssoc(cfgOf(c))
		h.l3[i] = nc
	}
	if h.mode == CoherenceDirectory {
		peak := h.pres.peak
		h.pres.init()
		h.pres.peak = peak
		for chip := range h.lanes {
			h.lanes[chip].shard.init()
			h.lanes[chip].ops = h.lanes[chip].ops[:0]
		}
	}
}
