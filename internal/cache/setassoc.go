// Package cache simulates the SMP-CMP-SMT memory hierarchy of the paper's
// evaluation platform: a per-core L1 data cache, a per-chip L2 shared by
// the chip's cores, and a per-chip victim L3, kept coherent across chips by
// an invalidation protocol. Every access reports the *source* that
// satisfied it (local L1/L2/L3, a remote chip's L2/L3, or memory), which is
// exactly the attribution the paper's PMU-based stall breakdown needs.
package cache

import (
	"fmt"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
)

// State is the MESI coherence state of a cached line.
type State uint8

const (
	// Invalid marks an empty or invalidated way.
	Invalid State = iota
	// Shared marks a clean line that other caches may also hold.
	Shared
	// Exclusive marks a clean line held by no other chip.
	Exclusive
	// Modified marks a dirty line held by no other chip.
	Modified
)

func (s State) String() string {
	switch s {
	case Invalid:
		return "I"
	case Shared:
		return "S"
	case Exclusive:
		return "E"
	case Modified:
		return "M"
	}
	return fmt.Sprintf("State(%d)", uint8(s))
}

// Config sizes one cache.
type Config struct {
	SizeBytes uint64 // total capacity in bytes
	Ways      int    // associativity
}

// Sets returns the number of sets the configuration yields.
func (c Config) Sets() int {
	lines := c.SizeBytes / memory.LineSize
	return int(lines) / c.Ways
}

// Validate reports whether the configuration is internally consistent.
func (c Config) Validate() error {
	if c.Ways <= 0 {
		return fmt.Errorf("cache: ways must be positive, got %d: %w", c.Ways, errs.ErrBadConfig)
	}
	if c.SizeBytes < memory.LineSize {
		return fmt.Errorf("cache: size %d smaller than one line: %w", c.SizeBytes, errs.ErrBadConfig)
	}
	if c.SizeBytes%memory.LineSize != 0 {
		return fmt.Errorf("cache: size %d not a multiple of the line size: %w", c.SizeBytes, errs.ErrBadConfig)
	}
	if c.Sets() == 0 {
		return fmt.Errorf("cache: %d bytes at %d ways yields zero sets: %w", c.SizeBytes, c.Ways, errs.ErrBadConfig)
	}
	return nil
}

// Stats counts what happened to one cache since construction.
type Stats struct {
	Hits          uint64
	Misses        uint64
	Evictions     uint64
	Invalidations uint64 // lines removed by coherence actions
	Fills         uint64
}

// invalidTag fills every empty way's tag slot. Line addresses are always
// line-aligned (the low memory.LineShift bits are zero), so the all-ones
// pattern can never equal a real line: a probe may compare tags alone,
// touching one dense slab, without consulting the state slab first. The
// invariant — tags[i] == invalidTag exactly when states[i] == Invalid —
// is maintained by Invalidate and restoreCache.
const invalidTag = ^memory.Addr(0)

// SetAssoc is a set-associative cache with true-LRU replacement. Addresses
// are tracked at line granularity. It is a passive container: coherence
// decisions live in Hierarchy.
//
// The backing store is structure-of-arrays: three contiguous slabs
// (tags, states, lru) indexed by set*ways + way. A probe walks `ways`
// adjacent tag words in one slab — typically a single cache line of
// simulator-host memory — instead of chasing a per-set slice header into
// 24-byte AoS records. The hit path then touches exactly the state and
// LRU words it needs.
type SetAssoc struct {
	cfg   Config
	nsets int
	ways  int
	// The slabs. All three have nsets*ways entries; way i of set s lives
	// at index s*ways + i.
	tags   []memory.Addr
	states []State
	lru    []uint64 // last-touch stamps; larger = more recent
	stamp  uint64
	stats  Stats
	// setMask is nsets-1 when the set count is a power of two, which
	// turns the per-probe modulo into a mask (the hot-path case: every
	// Power5 L1 and all of SmallConfig). Zero set counts are rejected by
	// Validate, so setMask == 0 only for the 1-set degenerate cache,
	// where the mask is trivially correct too.
	setMask uint64
	pow2    bool
}

// NewSetAssoc builds a cache from the configuration.
func NewSetAssoc(cfg Config) (*SetAssoc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	c := &SetAssoc{
		cfg:    cfg,
		nsets:  n,
		ways:   cfg.Ways,
		tags:   make([]memory.Addr, n*cfg.Ways),
		states: make([]State, n*cfg.Ways),
		lru:    make([]uint64, n*cfg.Ways),
	}
	for i := range c.tags {
		c.tags[i] = invalidTag
	}
	if n&(n-1) == 0 {
		c.setMask = uint64(n) - 1
		c.pow2 = true
	}
	return c, nil
}

// Config returns the cache's configuration.
func (c *SetAssoc) Config() Config { return c.cfg }

// Stats returns a copy of the cache's counters.
func (c *SetAssoc) Stats() Stats { return c.stats }

// setBase returns the slab index of the set's first way.
func (c *SetAssoc) setBase(line memory.Addr) int {
	if c.pow2 {
		return int(memory.LineIndex(line)&c.setMask) * c.ways
	}
	// A non-power-of-two set count (e.g. the Power5 L2's 1638 sets) must
	// keep the modulo: any faster reduction would change the set mapping
	// and with it every byte of downstream results.
	return int(memory.LineIndex(line)%uint64(c.nsets)) * c.ways
}

// findWay returns the slab index of the line's way, or -1. Because empty
// ways hold invalidTag, the scan touches only the tag slab.
func (c *SetAssoc) findWay(line memory.Addr) int {
	b := c.setBase(line)
	tags := c.tags[b : b+c.ways]
	for i := range tags {
		if tags[i] == line {
			return b + i
		}
	}
	return -1
}

// Lookup probes for the line. On a hit it refreshes LRU and returns the
// current state; on a miss it returns Invalid.
func (c *SetAssoc) Lookup(line memory.Addr) State {
	if i := c.findWay(line); i >= 0 {
		c.stamp++
		c.lru[i] = c.stamp
		c.stats.Hits++
		return c.states[i]
	}
	c.stats.Misses++
	return Invalid
}

// Peek probes for the line without perturbing LRU or statistics. Coherence
// snoops from other chips use Peek so that remote probes do not distort
// the victim cache's recency ordering.
func (c *SetAssoc) Peek(line memory.Addr) State {
	if i := c.findWay(line); i >= 0 {
		return c.states[i]
	}
	return Invalid
}

// Insert places the line in the given state, evicting the LRU way if the
// set is full. It returns the evicted line and its state when an eviction
// happened. Inserting a line that is already present updates its state in
// place.
func (c *SetAssoc) Insert(line memory.Addr, st State) (evicted memory.Addr, evictedState State, didEvict bool) {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	b := c.setBase(line)
	c.stamp++
	// One pass over the tag slab finds the line and, failing that, the
	// first free way (empty ways carry invalidTag, so both checks read
	// the same dense array).
	victim := -1
	tags := c.tags[b : b+c.ways]
	for i := range tags {
		if tags[i] == line {
			// Already present: update in place.
			c.states[b+i] = st
			c.lru[b+i] = c.stamp
			return 0, Invalid, false
		}
		if victim < 0 && tags[i] == invalidTag {
			victim = b + i
		}
	}
	if victim < 0 {
		// Evict true LRU.
		victim = b
		lru := c.lru[b : b+c.ways]
		for i := 1; i < len(lru); i++ {
			if lru[i] < c.lru[victim] {
				victim = b + i
			}
		}
		evicted, evictedState, didEvict = c.tags[victim], c.states[victim], true
		c.stats.Evictions++
	}
	c.tags[victim] = line
	c.states[victim] = st
	c.lru[victim] = c.stamp
	c.stats.Fills++
	return evicted, evictedState, didEvict
}

// Invalidate removes the line if present, returning the state it had. A
// return of Invalid means the line was not cached.
func (c *SetAssoc) Invalidate(line memory.Addr) State {
	if i := c.findWay(line); i >= 0 {
		st := c.states[i]
		c.states[i] = Invalid
		c.tags[i] = invalidTag
		c.stats.Invalidations++
		return st
	}
	return Invalid
}

// Downgrade moves the line to Shared if it is present in Exclusive or
// Modified state (a remote read snoop hit). It reports whether the line
// was present.
func (c *SetAssoc) Downgrade(line memory.Addr) bool {
	if i := c.findWay(line); i >= 0 {
		if c.states[i] == Exclusive || c.states[i] == Modified {
			c.states[i] = Shared
		}
		return true
	}
	return false
}

// SetState rewrites the coherence state of a present line (e.g. a write
// upgrade Shared -> Modified). It reports whether the line was present.
func (c *SetAssoc) SetState(line memory.Addr, st State) bool {
	if st == Invalid {
		panic("cache: SetState to Invalid; use Invalidate")
	}
	if i := c.findWay(line); i >= 0 {
		c.states[i] = st
		return true
	}
	return false
}

// ForEachLine calls f for every valid line currently cached, in no
// particular order. The coherence directory's invariant checker uses it to
// rebuild ground truth from cache contents.
func (c *SetAssoc) ForEachLine(f func(line memory.Addr, st State)) {
	for i, st := range c.states {
		if st != Invalid {
			f(c.tags[i], st)
		}
	}
}

// Occupancy returns the number of valid lines currently cached.
func (c *SetAssoc) Occupancy() int {
	n := 0
	for _, st := range c.states {
		if st != Invalid {
			n++
		}
	}
	return n
}

// Capacity returns the total number of lines the cache can hold.
func (c *SetAssoc) Capacity() int { return c.nsets * c.ways }
