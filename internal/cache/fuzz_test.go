package cache

import (
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

// FuzzHierarchyAccess decodes arbitrary bytes into a cache operation
// sequence — 3 bytes per access: CPU selector, line selector, flag byte
// (bit 0: write) — and replays it through a broadcast and a directory
// hierarchy in lockstep. Whatever the sequence, neither implementation
// may panic, every per-access result must match, the coherence and
// attribution counters must stay byte-identical, and the directory must
// agree with a ground-truth scan of cache contents.
func FuzzHierarchyAccess(f *testing.F) {
	f.Add([]byte{0, 0, 1})
	f.Add([]byte{1, 0, 0, 5, 0, 1, 1, 0, 0})
	// A write ping-pong across chips followed by reads.
	f.Add([]byte{0, 9, 1, 4, 9, 1, 0, 9, 0, 4, 9, 0, 2, 9, 1})
	// Dense line reuse to force evictions and victim-L3 spills.
	seed := make([]byte, 0, 96)
	for i := 0; i < 32; i++ {
		seed = append(seed, byte(i), byte(i*7), byte(i%2))
	}
	f.Add(seed)

	f.Fuzz(func(t *testing.T, data []byte) {
		topo := topology.OpenPower720()
		bc, dir := twin(t, topo, topology.DefaultLatencies(), SmallConfig())
		ncpu := topo.NumCPUs()
		for i := 0; i+3 <= len(data); i += 3 {
			cpu := topology.CPUID(int(data[i]) % ncpu)
			addr := memory.Addr(uint64(data[i+1]) * memory.LineSize)
			write := data[i+2]&1 != 0
			rb := bc.Access(cpu, addr, write)
			rd := dir.Access(cpu, addr, write)
			if rb != rd {
				t.Fatalf("op %d: cpu %d line %#x write=%v:\nbroadcast %+v\ndirectory %+v",
					i/3, cpu, uint64(addr), write, rb, rd)
			}
		}
		if bc.SourceCounts() != dir.SourceCounts() || bc.SourceCycles() != dir.SourceCycles() {
			t.Fatalf("attribution diverged:\nbroadcast %v / %v\ndirectory %v / %v",
				bc.SourceCounts(), bc.SourceCycles(), dir.SourceCounts(), dir.SourceCycles())
		}
		if bc.InvalidationsSent() != dir.InvalidationsSent() ||
			bc.Upgrades() != dir.Upgrades() || bc.Writebacks() != dir.Writebacks() {
			t.Fatalf("coherence counters diverged: broadcast {inv:%d up:%d wb:%d} directory {inv:%d up:%d wb:%d}",
				bc.InvalidationsSent(), bc.Upgrades(), bc.Writebacks(),
				dir.InvalidationsSent(), dir.Upgrades(), dir.Writebacks())
		}
		if err := dir.CheckDirectory(); err != nil {
			t.Fatal(err)
		}
	})
}
