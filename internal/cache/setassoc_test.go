package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"threadcluster/internal/memory"
)

func mustCache(t *testing.T, cfg Config) *SetAssoc {
	t.Helper()
	c, err := NewSetAssoc(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func line(i uint64) memory.Addr { return memory.Addr(i * memory.LineSize) }

func TestConfigSets(t *testing.T) {
	p5 := Power5Config()
	if got := p5.L1.Sets(); got != 128 {
		t.Errorf("L1 sets = %d, want 128 (64KB/128B/4-way)", got)
	}
	if got := p5.L2.Sets(); got != 1638 {
		t.Errorf("L2 sets = %d, want 1638 (2MB/128B/10-way)", got)
	}
	if got := p5.L3.Sets(); got != 24576 {
		t.Errorf("L3 sets = %d, want 24576 (36MB/128B/12-way)", got)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{SizeBytes: 1024, Ways: 0},
		{SizeBytes: 64, Ways: 1},              // smaller than a line
		{SizeBytes: 1000, Ways: 2},            // not line multiple
		{SizeBytes: memory.LineSize, Ways: 2}, // zero sets
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("Validate(%+v) = nil, want error", cfg)
		}
	}
	if err := (Config{SizeBytes: 4096, Ways: 2}).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestLookupMissThenHit(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	if st := c.Lookup(line(1)); st != Invalid {
		t.Fatalf("cold lookup = %v, want Invalid", st)
	}
	c.Insert(line(1), Shared)
	if st := c.Lookup(line(1)); st != Shared {
		t.Fatalf("lookup after insert = %v, want Shared", st)
	}
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Fills != 1 {
		t.Errorf("stats = %+v, want 1 hit, 1 miss, 1 fill", s)
	}
}

func TestInsertUpdatesInPlace(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	c.Insert(line(1), Shared)
	_, _, evicted := c.Insert(line(1), Modified)
	if evicted {
		t.Error("re-insert of present line should not evict")
	}
	if st := c.Peek(line(1)); st != Modified {
		t.Errorf("state after update = %v, want Modified", st)
	}
	if c.Occupancy() != 1 {
		t.Errorf("occupancy = %d, want 1", c.Occupancy())
	}
}

func TestLRUEviction(t *testing.T) {
	// 2-way, sets = 4096/128/2 = 16. Lines 0, 16, 32 all map to set 0.
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	sets := uint64(c.Config().Sets())
	a, b, d := line(0), line(sets), line(2*sets)
	c.Insert(a, Shared)
	c.Insert(b, Shared)
	c.Lookup(a) // touch a so b becomes LRU
	evicted, _, did := c.Insert(d, Shared)
	if !did || evicted != b {
		t.Fatalf("evicted %#x (did=%v), want %#x (the LRU)", uint64(evicted), did, uint64(b))
	}
	if c.Peek(a) == Invalid || c.Peek(d) == Invalid {
		t.Error("a and d should be resident after eviction of b")
	}
}

func TestPeekDoesNotPerturbLRU(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	sets := uint64(c.Config().Sets())
	a, b, d := line(0), line(sets), line(2*sets)
	c.Insert(a, Shared)
	c.Insert(b, Shared)
	c.Peek(a) // must NOT refresh a
	evicted, _, did := c.Insert(d, Shared)
	if !did || evicted != a {
		t.Fatalf("evicted %#x, want %#x: Peek must not refresh LRU", uint64(evicted), uint64(a))
	}
	before := c.Stats()
	c.Peek(d)
	if after := c.Stats(); after != before {
		t.Error("Peek must not change statistics")
	}
}

func TestInvalidate(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	c.Insert(line(3), Modified)
	if st := c.Invalidate(line(3)); st != Modified {
		t.Errorf("Invalidate returned %v, want Modified", st)
	}
	if st := c.Invalidate(line(3)); st != Invalid {
		t.Errorf("second Invalidate returned %v, want Invalid", st)
	}
	if c.Occupancy() != 0 {
		t.Errorf("occupancy = %d, want 0", c.Occupancy())
	}
	if got := c.Stats().Invalidations; got != 1 {
		t.Errorf("invalidations = %d, want 1", got)
	}
}

func TestDowngrade(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	c.Insert(line(5), Modified)
	if !c.Downgrade(line(5)) {
		t.Fatal("Downgrade of present line should report true")
	}
	if st := c.Peek(line(5)); st != Shared {
		t.Errorf("state after downgrade = %v, want Shared", st)
	}
	if c.Downgrade(line(6)) {
		t.Error("Downgrade of absent line should report false")
	}
	// Downgrading a Shared line keeps it Shared.
	if !c.Downgrade(line(5)) || c.Peek(line(5)) != Shared {
		t.Error("Downgrade of Shared line should keep Shared")
	}
}

func TestSetState(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	c.Insert(line(7), Shared)
	if !c.SetState(line(7), Modified) {
		t.Fatal("SetState of present line should report true")
	}
	if st := c.Peek(line(7)); st != Modified {
		t.Errorf("state = %v, want Modified", st)
	}
	if c.SetState(line(8), Shared) {
		t.Error("SetState of absent line should report false")
	}
}

func TestInsertPanicsOnInvalid(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	defer func() {
		if recover() == nil {
			t.Error("Insert(Invalid) should panic")
		}
	}()
	c.Insert(line(1), Invalid)
}

// Property: occupancy never exceeds capacity, and a line just inserted is
// always resident, under arbitrary insert/invalidate sequences.
func TestOccupancyBounded(t *testing.T) {
	f := func(ops []uint16, seed int64) bool {
		c, err := NewSetAssoc(Config{SizeBytes: 2048, Ways: 2})
		if err != nil {
			return false
		}
		rng := rand.New(rand.NewSource(seed))
		for _, op := range ops {
			l := line(uint64(op % 64))
			if rng.Intn(4) == 0 {
				c.Invalidate(l)
			} else {
				c.Insert(l, Shared)
				if c.Peek(l) == Invalid {
					return false
				}
			}
			if c.Occupancy() > c.Capacity() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: inserting N distinct lines that map to the same set keeps at
// most Ways of them resident, and each eviction reports a line that was
// previously resident.
func TestSetAssociativityRespected(t *testing.T) {
	c := mustCache(t, Config{SizeBytes: 4096, Ways: 2})
	sets := uint64(c.Config().Sets())
	resident := make(map[memory.Addr]bool)
	for i := uint64(0); i < 10; i++ {
		l := line(i * sets) // all in set 0
		evicted, _, did := c.Insert(l, Shared)
		if did {
			if !resident[evicted] {
				t.Fatalf("evicted %#x was not resident", uint64(evicted))
			}
			delete(resident, evicted)
		}
		resident[l] = true
		if len(resident) > 2 {
			t.Fatalf("more than Ways lines resident in one set: %d", len(resident))
		}
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{Invalid: "I", Shared: "S", Exclusive: "E", Modified: "M"} {
		if got := st.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", st, got, want)
		}
	}
}
