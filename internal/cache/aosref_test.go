package cache

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"threadcluster/internal/memory"
)

// This file preserves the pre-slab array-of-structures SetAssoc verbatim
// as a test-only reference implementation. It serves two jobs: the
// differential test below pins the SoA rewrite to the exact AoS
// semantics (hit/miss results, LRU victim choice, statistics), and the
// BenchmarkSetAssocHot pair measures the slab layout's single-thread
// win, guarded in BENCH_sim.json (soa-vs-aos-hotpath, min_ratio 1.2).

type aosWay struct {
	tag   memory.Addr
	state State
	lru   uint64
}

type aosSetAssoc struct {
	cfg     Config
	sets    [][]aosWay
	stamp   uint64
	stats   Stats
	setMask uint64
	pow2    bool
}

func newAoSSetAssoc(cfg Config) (*aosSetAssoc, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	n := cfg.Sets()
	sets := make([][]aosWay, n)
	backing := make([]aosWay, n*cfg.Ways)
	for i := range sets {
		sets[i], backing = backing[:cfg.Ways], backing[cfg.Ways:]
	}
	c := &aosSetAssoc{cfg: cfg, sets: sets}
	if n&(n-1) == 0 {
		c.setMask = uint64(n) - 1
		c.pow2 = true
	}
	return c, nil
}

func (c *aosSetAssoc) setOf(line memory.Addr) []aosWay {
	if c.pow2 {
		return c.sets[memory.LineIndex(line)&c.setMask]
	}
	return c.sets[memory.LineIndex(line)%uint64(len(c.sets))]
}

func (c *aosSetAssoc) Lookup(line memory.Addr) State {
	set := c.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			c.stamp++
			set[i].lru = c.stamp
			c.stats.Hits++
			return set[i].state
		}
	}
	c.stats.Misses++
	return Invalid
}

func (c *aosSetAssoc) Peek(line memory.Addr) State {
	set := c.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			return set[i].state
		}
	}
	return Invalid
}

func (c *aosSetAssoc) Insert(line memory.Addr, st State) (evicted memory.Addr, evictedState State, didEvict bool) {
	if st == Invalid {
		panic("cache: Insert with Invalid state")
	}
	set := c.setOf(line)
	c.stamp++
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			set[i].state = st
			set[i].lru = c.stamp
			return 0, Invalid, false
		}
	}
	victim := -1
	for i := range set {
		if set[i].state == Invalid {
			victim = i
			break
		}
	}
	if victim < 0 {
		victim = 0
		for i := 1; i < len(set); i++ {
			if set[i].lru < set[victim].lru {
				victim = i
			}
		}
		evicted, evictedState, didEvict = set[victim].tag, set[victim].state, true
		c.stats.Evictions++
	}
	set[victim] = aosWay{tag: line, state: st, lru: c.stamp}
	c.stats.Fills++
	return evicted, evictedState, didEvict
}

func (c *aosSetAssoc) Invalidate(line memory.Addr) State {
	set := c.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			st := set[i].state
			set[i].state = Invalid
			c.stats.Invalidations++
			return st
		}
	}
	return Invalid
}

func (c *aosSetAssoc) Downgrade(line memory.Addr) bool {
	set := c.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			if set[i].state == Exclusive || set[i].state == Modified {
				set[i].state = Shared
			}
			return true
		}
	}
	return false
}

func (c *aosSetAssoc) SetState(line memory.Addr, st State) bool {
	if st == Invalid {
		panic("cache: SetState to Invalid; use Invalidate")
	}
	set := c.setOf(line)
	for i := range set {
		if set[i].state != Invalid && set[i].tag == line {
			set[i].state = st
			return true
		}
	}
	return false
}

func (c *aosSetAssoc) ForEachLine(f func(line memory.Addr, st State)) {
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				f(set[i].tag, set[i].state)
			}
		}
	}
}

func (c *aosSetAssoc) Occupancy() int {
	n := 0
	for _, set := range c.sets {
		for i := range set {
			if set[i].state != Invalid {
				n++
			}
		}
	}
	return n
}

// hotOp is one step of the deterministic mixed stream both layouts replay.
type hotOp struct {
	line memory.Addr
	kind uint8 // 0 = lookup (+insert on miss), 1 = invalidate, 2 = downgrade, 3 = peek
	st   State
}

// hotStream builds a deterministic miss-heavy probe stream: the working
// set is `spread` times the cache capacity so lookups regularly scan a
// full set and insertions regularly evict, which is exactly the loop the
// slab layout exists to make cheap.
func hotStream(cfg Config, spread, n int, seed int64) []hotOp {
	rng := rand.New(rand.NewSource(seed))
	lines := cfg.Sets() * cfg.Ways * spread
	ops := make([]hotOp, n)
	for i := range ops {
		op := hotOp{line: memory.Addr(rng.Intn(lines)) * memory.LineSize}
		switch {
		case i%64 == 63:
			op.kind = 1
		case i%128 == 100:
			op.kind = 2
		case i%32 == 17:
			op.kind = 3
		default:
			op.st = State(1 + rng.Intn(3)) // Shared / Exclusive / Modified
		}
		ops[i] = op
	}
	return ops
}

type lineState struct {
	line memory.Addr
	st   State
}

func dumpLines(fe func(func(memory.Addr, State))) []lineState {
	var out []lineState
	fe(func(line memory.Addr, st State) { out = append(out, lineState{line, st}) })
	sort.Slice(out, func(i, j int) bool {
		if out[i].line != out[j].line {
			return out[i].line < out[j].line
		}
		return out[i].st < out[j].st
	})
	return out
}

// TestSetAssocMatchesAoSReference replays the same deterministic stream
// through the slab-backed SetAssoc and the preserved AoS reference and
// requires identical results op by op — hit states, eviction victims
// (i.e. identical LRU order), invalidation/downgrade outcomes — plus
// identical statistics and final contents. Geometries cover the pow2
// mask path, the non-pow2 modulo path (the Power5 L2's 1638 sets) and
// the 1-set degenerate cache.
func TestSetAssocMatchesAoSReference(t *testing.T) {
	geoms := []Config{
		{SizeBytes: 64 << 10, Ways: 4},            // 128 sets: pow2 mask path
		{SizeBytes: 2 << 20, Ways: 10},            // 1638 sets: non-pow2 modulo path
		{SizeBytes: 2 * memory.LineSize, Ways: 2}, // 1 set: degenerate mask
	}
	for _, cfg := range geoms {
		cfg := cfg
		t.Run(fmt.Sprintf("%dB-%dway", cfg.SizeBytes, cfg.Ways), func(t *testing.T) {
			soa, err := NewSetAssoc(cfg)
			if err != nil {
				t.Fatal(err)
			}
			aos, err := newAoSSetAssoc(cfg)
			if err != nil {
				t.Fatal(err)
			}
			for i, op := range hotStream(cfg, 3, 200000, 99) {
				switch op.kind {
				case 1:
					if g, w := soa.Invalidate(op.line), aos.Invalidate(op.line); g != w {
						t.Fatalf("op %d: Invalidate(%#x) = %v, AoS reference %v", i, uint64(op.line), g, w)
					}
				case 2:
					if g, w := soa.Downgrade(op.line), aos.Downgrade(op.line); g != w {
						t.Fatalf("op %d: Downgrade(%#x) = %v, AoS reference %v", i, uint64(op.line), g, w)
					}
				case 3:
					if g, w := soa.Peek(op.line), aos.Peek(op.line); g != w {
						t.Fatalf("op %d: Peek(%#x) = %v, AoS reference %v", i, uint64(op.line), g, w)
					}
				default:
					g, w := soa.Lookup(op.line), aos.Lookup(op.line)
					if g != w {
						t.Fatalf("op %d: Lookup(%#x) = %v, AoS reference %v", i, uint64(op.line), g, w)
					}
					if g == Invalid {
						ge, gs, gd := soa.Insert(op.line, op.st)
						we, ws, wd := aos.Insert(op.line, op.st)
						if ge != we || gs != ws || gd != wd {
							t.Fatalf("op %d: Insert(%#x,%v) evicted (%#x,%v,%v), AoS reference (%#x,%v,%v)",
								i, uint64(op.line), op.st, uint64(ge), gs, gd, uint64(we), ws, wd)
						}
					}
				}
			}
			if soa.Stats() != aos.stats {
				t.Fatalf("stats diverge: %+v vs AoS reference %+v", soa.Stats(), aos.stats)
			}
			if soa.Occupancy() != aos.Occupancy() {
				t.Fatalf("occupancy %d vs AoS reference %d", soa.Occupancy(), aos.Occupancy())
			}
			got, want := dumpLines(soa.ForEachLine), dumpLines(aos.ForEachLine)
			if len(got) != len(want) {
				t.Fatalf("content size %d vs %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("content[%d] = %+v, AoS reference %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// benchHotConfig is a 2 MiB 8-way cache (2048 sets, pow2): large enough
// that the slab arrays leave L1d and layout starts to matter, with a
// working set 4x capacity so most probes scan the whole set.
var benchHotConfig = Config{SizeBytes: 2 << 20, Ways: 8}

// benchHotMask keeps the replay index a mask, not a modulo, so harness
// overhead stays flat and the pair ratio measures the layouts themselves.
const benchHotMask = 1<<16 - 1

func benchHotOps() []hotOp { return hotStream(benchHotConfig, 4, benchHotMask+1, 7) }

// BenchmarkSetAssocHotSoA and BenchmarkSetAssocHotAoSRef replay the same
// deterministic miss-heavy stream through the two layouts; their ratio is
// the slab rewrite's measured single-thread win (soa-vs-aos-hotpath in
// BENCH_sim.json).
func BenchmarkSetAssocHotSoA(b *testing.B) {
	c, err := NewSetAssoc(benchHotConfig)
	if err != nil {
		b.Fatal(err)
	}
	ops := benchHotOps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i&benchHotMask]
		switch op.kind {
		case 1:
			c.Invalidate(op.line)
		case 2:
			c.Downgrade(op.line)
		case 3:
			c.Peek(op.line)
		default:
			if c.Lookup(op.line) == Invalid {
				c.Insert(op.line, op.st)
			}
		}
	}
}

func BenchmarkSetAssocHotAoSRef(b *testing.B) {
	c, err := newAoSSetAssoc(benchHotConfig)
	if err != nil {
		b.Fatal(err)
	}
	ops := benchHotOps()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := ops[i&benchHotMask]
		switch op.kind {
		case 1:
			c.Invalidate(op.line)
		case 2:
			c.Downgrade(op.line)
		case 3:
			c.Peek(op.line)
		default:
			if c.Lookup(op.line) == Invalid {
				c.Insert(op.line, op.st)
			}
		}
	}
}
