package cache

import (
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

func mustHierarchy(t *testing.T, topo topology.Topology, cfg HierarchyConfig) *Hierarchy {
	t.Helper()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestColdMissThenLocalHits(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), Power5Config())
	lat := h.Latencies()
	addr := memory.Addr(0x10000)

	r := h.Access(0, addr, false)
	if r.Source != SrcMemory || r.Cycles != lat.Memory || !r.L1Miss {
		t.Fatalf("cold access = %+v, want memory fill", r)
	}
	r = h.Access(0, addr, false)
	if r.Source != SrcL1 || r.Cycles != lat.L1Hit || r.L1Miss {
		t.Fatalf("second access = %+v, want L1 hit", r)
	}
	// SMT sibling (CPU 1) shares core 0's L1.
	r = h.Access(1, addr, false)
	if r.Source != SrcL1 {
		t.Fatalf("SMT sibling access = %+v, want L1 hit (shared L1)", r)
	}
	// Same chip, other core (CPU 2) hits the shared L2.
	r = h.Access(2, addr, false)
	if r.Source != SrcL2 || r.Cycles != lat.L2Hit {
		t.Fatalf("same-chip access = %+v, want L2 hit", r)
	}
}

func TestCrossChipReadIsRemote(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), Power5Config())
	addr := memory.Addr(0x20000)
	h.Access(0, addr, false) // chip 0 now caches the line

	r := h.Access(4, addr, false) // CPU 4 is on chip 1
	if r.Source != SrcRemoteL2 {
		t.Fatalf("cross-chip read = %+v, want remote-L2", r)
	}
	if !r.Source.Remote() {
		t.Error("SrcRemoteL2.Remote() should be true")
	}
	// After the transfer both chips share the line: now a local hit.
	r = h.Access(4, addr, false)
	if r.Source != SrcL1 {
		t.Fatalf("after transfer = %+v, want L1 hit", r)
	}
}

func TestWriteInvalidatesRemoteCopies(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), Power5Config())
	addr := memory.Addr(0x30000)
	h.Access(0, addr, false) // chip 0 reads
	h.Access(4, addr, false) // chip 1 reads (both Shared now)

	// Chip 1 writes: chip 0's copies must die.
	r := h.Access(4, addr, true)
	if r.Source != SrcL1 {
		t.Fatalf("write on present Shared line = %+v, want L1 upgrade", r)
	}
	// Chip 0's next read must go remote.
	r = h.Access(0, addr, false)
	if !r.Source.Remote() {
		t.Fatalf("read after remote write = %+v, want remote source", r)
	}
	if h.InvalidationsSent() == 0 {
		t.Error("coherence should have sent invalidations")
	}
	if h.Upgrades() == 0 {
		t.Error("a Shared->Modified upgrade should have been counted")
	}
}

func TestPingPongSharing(t *testing.T) {
	// Two threads on different chips alternately writing one line must
	// produce a remote access on every access after the first two.
	h := mustHierarchy(t, topology.OpenPower720(), Power5Config())
	addr := memory.Addr(0x40000)
	h.Access(0, addr, true)
	remote := 0
	for i := 0; i < 10; i++ {
		cpu := topology.CPUID(0)
		if i%2 == 0 {
			cpu = 4
		}
		r := h.Access(cpu, addr, true)
		if r.Source.Remote() {
			remote++
		}
	}
	if remote != 10 {
		t.Errorf("ping-pong produced %d/10 remote accesses, want 10", remote)
	}
}

func TestSameChipSharingStaysLocal(t *testing.T) {
	// The same ping-pong on one chip must never go remote: this is the
	// whole point of clustered placement.
	h := mustHierarchy(t, topology.OpenPower720(), Power5Config())
	addr := memory.Addr(0x50000)
	h.Access(0, addr, true)
	for i := 0; i < 10; i++ {
		cpu := topology.CPUID(0)
		if i%2 == 0 {
			cpu = 2 // other core, same chip
		}
		r := h.Access(cpu, addr, true)
		if r.Source.Remote() {
			t.Fatalf("iteration %d: same-chip sharing went remote: %+v", i, r)
		}
		if r.Cycles > h.Latencies().L2Hit {
			t.Fatalf("iteration %d: same-chip sharing cost %d cycles, want <= L2", i, r.Cycles)
		}
	}
}

func TestVictimL3ReceivesL2Evictions(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), SmallConfig())
	// Fill far beyond L2 capacity (16KB = 128 lines) from one CPU.
	for i := uint64(0); i < 300; i++ {
		h.Access(0, memory.Addr(i*memory.LineSize), false)
	}
	if h.L3(0).Occupancy() == 0 {
		t.Error("L3 should hold L2 victims after overflow")
	}
	// A re-access of an early line should hit somewhere local (L3) or
	// memory, never remotely (no other chip touched anything).
	r := h.Access(0, memory.Addr(0), false)
	if r.Source.Remote() {
		t.Errorf("re-access went remote: %+v", r)
	}
}

func TestL3HitMovesLineBackToL2(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), SmallConfig())
	for i := uint64(0); i < 300; i++ {
		h.Access(0, memory.Addr(i*memory.LineSize), false)
	}
	// Find a line that currently sits in L3.
	var l3line memory.Addr
	found := false
	for i := uint64(0); i < 300 && !found; i++ {
		a := memory.Addr(i * memory.LineSize)
		if h.L3(0).Peek(a) != Invalid {
			l3line, found = a, true
		}
	}
	if !found {
		t.Skip("no line found in L3; config too large for this test")
	}
	r := h.Access(0, l3line, false)
	if r.Source != SrcL3 {
		t.Fatalf("access to L3-resident line = %+v, want L3 hit", r)
	}
	if h.L3(0).Peek(l3line) != Invalid {
		t.Error("victim L3 should relinquish the line on a hit")
	}
	if h.L2(0).Peek(l3line) == Invalid {
		t.Error("line should be back in L2 after an L3 hit")
	}
}

func TestInclusionAfterL2Eviction(t *testing.T) {
	// After an L2 eviction the chip's L1s must not retain the line, so
	// remote snoops (which probe only L2/L3) can't miss live copies.
	h := mustHierarchy(t, topology.OpenPower720(), SmallConfig())
	first := memory.Addr(0)
	h.Access(0, first, false)
	for i := uint64(1); i < 400; i++ {
		h.Access(0, memory.Addr(i*memory.LineSize), false)
	}
	if h.L2(0).Peek(first) == Invalid && h.L1(0).Peek(first) != Invalid {
		t.Error("L1 retains a line its L2 evicted: inclusion broken")
	}
}

func TestRemoteL3Source(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), SmallConfig())
	target := memory.Addr(0)
	h.Access(0, target, false)
	// Push target out of chip 0's L2 into its L3.
	for i := uint64(1); h.L2(0).Peek(target) != Invalid && i < 1000; i++ {
		h.Access(0, memory.Addr(i*memory.LineSize), false)
	}
	if h.L3(0).Peek(target) == Invalid {
		t.Skip("target did not land in L3; tuning-dependent")
	}
	r := h.Access(4, target, false) // from chip 1
	if r.Source != SrcRemoteL3 {
		t.Fatalf("access = %+v, want remote-L3", r)
	}
}

func TestWritebacksOnDirtyLastLevelEvictions(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), SmallConfig())
	// Write far more dirty lines than L2+L3 hold (SmallConfig: 128 + 512
	// lines); the overflow must surface as writebacks.
	for i := uint64(0); i < 4096; i++ {
		h.Access(0, memory.Addr(i*memory.LineSize), true)
	}
	if h.Writebacks() == 0 {
		t.Error("dirty working set exceeding the cache must cause writebacks")
	}
	// A clean (read-only) stream of fresh lines must not write back.
	h2 := mustHierarchy(t, topology.OpenPower720(), SmallConfig())
	for i := uint64(0); i < 4096; i++ {
		h2.Access(0, memory.Addr(i*memory.LineSize), false)
	}
	if h2.Writebacks() != 0 {
		t.Errorf("clean stream produced %d writebacks", h2.Writebacks())
	}
}

func TestNiagaraLikeHasNoRemoteAccesses(t *testing.T) {
	// A single-chip machine has no remote caches at all: every source is
	// local no matter how threads share.
	h := mustHierarchy(t, topology.NiagaraLike(), SmallConfig())
	topo := topology.NiagaraLike()
	for i := 0; i < 20000; i++ {
		cpu := topology.CPUID(i % topo.NumCPUs())
		addr := memory.Addr(uint64(i%64) * memory.LineSize)
		if r := h.Access(cpu, addr, i%2 == 0); r.Source.Remote() {
			t.Fatalf("single-chip machine produced remote access %v", r.Source)
		}
	}
}

func TestFlushAll(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), Power5Config())
	addr := memory.Addr(0x60000)
	h.Access(0, addr, false)
	h.FlushAll()
	r := h.Access(0, addr, false)
	if r.Source != SrcMemory {
		t.Errorf("access after flush = %+v, want memory", r)
	}
}

func TestSourceStrings(t *testing.T) {
	want := map[Source]string{
		SrcL1: "L1", SrcL2: "L2", SrcL3: "L3",
		SrcRemoteL2: "remote-L2", SrcRemoteL3: "remote-L3", SrcMemory: "memory",
	}
	for src, s := range want {
		if src.String() != s {
			t.Errorf("%d.String() = %q, want %q", src, src.String(), s)
		}
	}
	if SrcL2.Remote() || SrcMemory.Remote() {
		t.Error("local sources must not report Remote")
	}
}

func TestNewHierarchyRejectsBadInput(t *testing.T) {
	if _, err := NewHierarchy(topology.Topology{}, topology.DefaultLatencies(), Power5Config()); err == nil {
		t.Error("invalid topology should fail")
	}
	if _, err := NewHierarchy(topology.OpenPower720(), topology.Latencies{}, Power5Config()); err == nil {
		t.Error("invalid latencies should fail")
	}
	bad := Power5Config()
	bad.L1.Ways = 0
	if _, err := NewHierarchy(topology.OpenPower720(), topology.DefaultLatencies(), bad); err == nil {
		t.Error("invalid cache config should fail")
	}
}

// Property-style stress: random accesses from random CPUs never produce a
// remote source for lines that only one chip has ever touched.
func TestNoFalseRemotes(t *testing.T) {
	h := mustHierarchy(t, topology.OpenPower720(), SmallConfig())
	// Chip 0 CPUs only (0..3) touching a private range.
	for i := 0; i < 5000; i++ {
		cpu := topology.CPUID(i % 4)
		addr := memory.Addr((uint64(i*37) % 512) * memory.LineSize)
		r := h.Access(cpu, addr, i%3 == 0)
		if r.Source.Remote() {
			t.Fatalf("access %d: single-chip workload saw remote source %v", i, r.Source)
		}
	}
}
