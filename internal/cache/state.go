package cache

import (
	"fmt"
	"sort"

	"threadcluster/internal/errs"
	"threadcluster/internal/memory"
	"threadcluster/internal/snapbin"
)

// This file serializes the hierarchy's complete mutable state for machine
// snapshots: every cache's valid ways (tag, MESI state, LRU stamp and way
// position), the per-cache statistics and stamp counters, the coherence
// directory (presence table plus per-chip shards, each emitted sorted by
// line address so the encoding is canonical), and every counter shard.
// Topology, latencies, geometry and the NUMA node map are configuration
// the restoring caller rebuilds; restore validates the snapshot against
// them and refuses mismatches.

// saveCache appends one set-associative cache's state: the LRU stamp
// counter, statistics, geometry (for validation) and every valid way in
// (set, way) order.
func saveCache(e *snapbin.Enc, c *SetAssoc) {
	e.U64(c.stamp)
	e.U64(c.stats.Hits)
	e.U64(c.stats.Misses)
	e.U64(c.stats.Evictions)
	e.U64(c.stats.Invalidations)
	e.U64(c.stats.Fills)
	e.U32(uint32(c.nsets))
	e.U32(uint32(c.ways))
	// Walk the slabs in (set, way) order — the same canonical order the
	// pre-slab AoS encoder emitted, so snapshots stay byte-identical.
	for s := 0; s < c.nsets; s++ {
		b := s * c.ways
		valid := 0
		for i := 0; i < c.ways; i++ {
			if c.states[b+i] != Invalid {
				valid++
			}
		}
		e.U8(uint8(valid))
		for i := 0; i < c.ways; i++ {
			if c.states[b+i] == Invalid {
				continue
			}
			e.U8(uint8(i))
			e.U64(uint64(c.tags[b+i]))
			e.U8(uint8(c.states[b+i]))
			e.U64(c.lru[b+i])
		}
	}
}

// restoreCache overwrites one cache's state with a state saved by
// saveCache, validating geometry, set mapping, way positions, states and
// LRU stamps so a corrupt or hostile snapshot cannot construct a cache
// the simulator could never have produced.
func restoreCache(d *snapbin.Dec, c *SetAssoc, what string) error {
	stamp := d.U64()
	var st Stats
	st.Hits = d.U64()
	st.Misses = d.U64()
	st.Evictions = d.U64()
	st.Invalidations = d.U64()
	st.Fills = d.U64()
	nsets := int(d.U32())
	ways := int(d.U32())
	if err := d.Err(); err != nil {
		return err
	}
	if nsets != c.nsets || ways != c.ways {
		return fmt.Errorf("cache: snapshot %s geometry %dx%d, built %dx%d: %w",
			what, nsets, ways, c.nsets, c.ways, errs.ErrBadConfig)
	}
	freshTags := make([]memory.Addr, nsets*ways)
	freshStates := make([]State, nsets*ways)
	freshLRU := make([]uint64, nsets*ways)
	for i := range freshTags {
		freshTags[i] = invalidTag
	}
	for s := 0; s < nsets; s++ {
		b := s * ways
		valid := int(d.U8())
		if d.Err() != nil {
			return d.Err()
		}
		if valid > ways {
			return fmt.Errorf("cache: snapshot %s set %d claims %d valid ways of %d: %w",
				what, s, valid, ways, snapbin.ErrCorrupt)
		}
		prev := -1
		for v := 0; v < valid; v++ {
			idx := int(d.U8())
			tag := memory.Addr(d.U64())
			state := State(d.U8())
			lru := d.U64()
			if d.Err() != nil {
				return d.Err()
			}
			if idx <= prev || idx >= ways {
				return fmt.Errorf("cache: snapshot %s set %d way index %d out of order: %w",
					what, s, idx, snapbin.ErrCorrupt)
			}
			prev = idx
			if state < Shared || state > Modified {
				return fmt.Errorf("cache: snapshot %s line %#x state %d: %w",
					what, uint64(tag), uint8(state), snapbin.ErrCorrupt)
			}
			if tag != memory.LineOf(tag) {
				return fmt.Errorf("cache: snapshot %s tag %#x not line-aligned: %w",
					what, uint64(tag), snapbin.ErrCorrupt)
			}
			if int(memory.LineIndex(tag)%uint64(nsets)) != s {
				return fmt.Errorf("cache: snapshot %s line %#x mapped to set %d: %w",
					what, uint64(tag), s, snapbin.ErrCorrupt)
			}
			if lru > stamp {
				return fmt.Errorf("cache: snapshot %s line %#x LRU stamp %d beyond counter %d: %w",
					what, uint64(tag), lru, stamp, snapbin.ErrCorrupt)
			}
			for w := 0; w < idx; w++ {
				if freshTags[b+w] == tag {
					return fmt.Errorf("cache: snapshot %s line %#x duplicated in set %d: %w",
						what, uint64(tag), s, snapbin.ErrCorrupt)
				}
			}
			freshTags[b+idx] = tag
			freshStates[b+idx] = state
			freshLRU[b+idx] = lru
		}
	}
	c.stamp = stamp
	c.stats = st
	copy(c.tags, freshTags)
	copy(c.states, freshStates)
	copy(c.lru, freshLRU)
	return nil
}

// sortedLines returns the table's tracked line addresses in ascending
// order — the canonical iteration order for encoding.
func sortedLines[E any](t *lineTable[E]) []memory.Addr {
	lines := make([]memory.Addr, 0, t.n)
	t.forEach(func(line memory.Addr, _ *E) {
		lines = append(lines, line)
	})
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	return lines
}

// savePres appends the machine-wide presence table sorted by line.
func savePres(e *snapbin.Enc, t *lineTable[presEntry]) {
	e.U64(uint64(t.peak))
	lines := sortedLines(t)
	e.U32(uint32(len(lines)))
	for _, line := range lines {
		ent := t.find(line)
		e.U64(uint64(line))
		e.U64(ent.l2)
		e.U64(ent.l3)
	}
}

// restorePres rebuilds the presence table from a savePres encoding.
func (h *Hierarchy) restorePres(d *snapbin.Dec) error {
	peak := int(d.U64())
	n := d.Count(24)
	chipMask := uint64(1)<<uint(h.topo.Chips) - 1
	var t lineTable[presEntry]
	t.init()
	var prev memory.Addr
	for i := 0; i < n; i++ {
		line := memory.Addr(d.U64())
		l2 := d.U64()
		l3 := d.U64()
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && line <= prev {
			return fmt.Errorf("cache: snapshot presence table out of order at %#x: %w", uint64(line), snapbin.ErrCorrupt)
		}
		prev = line
		if line != memory.LineOf(line) || l2|l3 == 0 || (l2|l3)&^chipMask != 0 {
			return fmt.Errorf("cache: snapshot presence entry %#x {l2:%#x l3:%#x}: %w", uint64(line), l2, l3, snapbin.ErrCorrupt)
		}
		*t.ensure(line) = presEntry{l2: l2, l3: l3}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if peak < t.n {
		return fmt.Errorf("cache: snapshot presence peak %d below occupancy %d: %w", peak, t.n, snapbin.ErrCorrupt)
	}
	t.peak = peak
	h.pres = t
	return nil
}

// saveShard appends one chip's directory shard sorted by line.
func saveShard(e *snapbin.Enc, t *lineTable[shardEntry]) {
	e.U64(uint64(t.peak))
	lines := sortedLines(t)
	e.U32(uint32(len(lines)))
	for _, line := range lines {
		ent := t.find(line)
		e.U64(uint64(line))
		e.U64(ent.l1)
		e.U8(uint8(ent.owner))
	}
}

// restoreShard rebuilds one chip's directory shard from a saveShard
// encoding, validating core bits and owner against the chip's core mask.
func (h *Hierarchy) restoreShard(d *snapbin.Dec, chip int) error {
	peak := int(d.U64())
	n := d.Count(17)
	mask := h.chipCoreMask(chip)
	var t lineTable[shardEntry]
	t.init()
	var prev memory.Addr
	for i := 0; i < n; i++ {
		line := memory.Addr(d.U64())
		l1 := d.U64()
		owner := int8(d.U8())
		if d.Err() != nil {
			return d.Err()
		}
		if i > 0 && line <= prev {
			return fmt.Errorf("cache: snapshot chip %d shard out of order at %#x: %w", chip, uint64(line), snapbin.ErrCorrupt)
		}
		prev = line
		if line != memory.LineOf(line) || l1 == 0 || l1&^mask != 0 {
			return fmt.Errorf("cache: snapshot chip %d shard entry %#x l1 %#x: %w", chip, uint64(line), l1, snapbin.ErrCorrupt)
		}
		if owner != NoOwner && (owner < 0 || l1&(1<<uint(owner)) == 0) {
			return fmt.Errorf("cache: snapshot chip %d shard entry %#x owner %d: %w", chip, uint64(line), owner, snapbin.ErrCorrupt)
		}
		*t.ensure(line) = shardEntry{l1: l1, owner: owner}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if peak < t.n {
		return fmt.Errorf("cache: snapshot chip %d shard peak %d below occupancy %d: %w", chip, peak, t.n, snapbin.ErrCorrupt)
	}
	t.peak = peak
	h.lanes[chip].shard = t
	return nil
}

// SaveState appends the hierarchy's complete mutable state to the
// encoder. The hierarchy must be quiesced at a slice barrier: every
// lane's coherence mailbox drained. The encoding is canonical — hash
// tables are emitted sorted by line address — so identical logical state
// yields identical bytes regardless of engine or GOMAXPROCS.
func (h *Hierarchy) SaveState(e *snapbin.Enc) error {
	for chip := range h.lanes {
		if len(h.lanes[chip].ops) != 0 {
			return fmt.Errorf("cache: chip %d lane has %d unapplied coherence ops mid-slice: %w",
				chip, len(h.lanes[chip].ops), errs.ErrThreadRunning)
		}
	}
	e.U8(uint8(h.mode))
	e.U32(uint32(len(h.l1)))
	for _, c := range h.l1 {
		saveCache(e, c)
	}
	e.U32(uint32(len(h.l2)))
	for chip := range h.l2 {
		saveCache(e, h.l2[chip])
		saveCache(e, h.l3[chip])
	}
	e.U64(h.probesAvoided)
	e.U64(h.invalidationsSent)
	e.U64(h.upgrades)
	e.U64(h.writebacks)
	e.U32(uint32(NumSources))
	for _, v := range h.srcCounts {
		e.U64(v)
	}
	for _, v := range h.srcCycles {
		e.U64(v)
	}
	savePres(e, &h.pres)
	e.U32(uint32(len(h.lanes)))
	for chip := range h.lanes {
		l := &h.lanes[chip]
		saveShard(e, &l.shard)
		e.U64(l.probesAvoided)
		e.U64(l.invalidationsSent)
		e.U64(l.upgrades)
		e.U64(l.writebacks)
		for _, v := range l.srcCounts {
			e.U64(v)
		}
		for _, v := range l.srcCycles {
			e.U64(v)
		}
	}
	return nil
}

// RestoreState overwrites the hierarchy's mutable state with a state
// saved by SaveState. The hierarchy must have been rebuilt with the same
// topology, geometry and coherence mode; the restored directory is
// verified against the restored cache contents before returning.
func (h *Hierarchy) RestoreState(d *snapbin.Dec) error {
	if mode := CoherenceMode(d.U8()); d.Err() == nil && mode != h.mode {
		return fmt.Errorf("cache: snapshot coherence mode %v, built with %v: %w", mode, h.mode, errs.ErrBadConfig)
	}
	if n := int(d.U32()); d.Err() == nil && n != len(h.l1) {
		return fmt.Errorf("cache: snapshot has %d L1s, built with %d: %w", n, len(h.l1), errs.ErrBadConfig)
	}
	for core, c := range h.l1 {
		if err := restoreCache(d, c, fmt.Sprintf("L1[%d]", core)); err != nil {
			return err
		}
	}
	if n := int(d.U32()); d.Err() == nil && n != len(h.l2) {
		return fmt.Errorf("cache: snapshot has %d chips, built with %d: %w", n, len(h.l2), errs.ErrBadConfig)
	}
	for chip := range h.l2 {
		if err := restoreCache(d, h.l2[chip], fmt.Sprintf("L2[%d]", chip)); err != nil {
			return err
		}
		if err := restoreCache(d, h.l3[chip], fmt.Sprintf("L3[%d]", chip)); err != nil {
			return err
		}
	}
	h.probesAvoided = d.U64()
	h.invalidationsSent = d.U64()
	h.upgrades = d.U64()
	h.writebacks = d.U64()
	if n := int(d.U32()); d.Err() == nil && n != NumSources {
		return fmt.Errorf("cache: snapshot has %d access sources, built with %d: %w", n, NumSources, errs.ErrBadConfig)
	}
	for i := range h.srcCounts {
		h.srcCounts[i] = d.U64()
	}
	for i := range h.srcCycles {
		h.srcCycles[i] = d.U64()
	}
	if err := h.restorePres(d); err != nil {
		return err
	}
	if n := int(d.U32()); d.Err() == nil && n != len(h.lanes) {
		return fmt.Errorf("cache: snapshot has %d lanes, built with %d: %w", n, len(h.lanes), errs.ErrBadConfig)
	}
	for chip := range h.lanes {
		l := &h.lanes[chip]
		if err := h.restoreShard(d, chip); err != nil {
			return err
		}
		l.ops = l.ops[:0]
		l.probesAvoided = d.U64()
		l.invalidationsSent = d.U64()
		l.upgrades = d.U64()
		l.writebacks = d.U64()
		for i := range l.srcCounts {
			l.srcCounts[i] = d.U64()
		}
		for i := range l.srcCycles {
			l.srcCycles[i] = d.U64()
		}
	}
	if err := d.Err(); err != nil {
		return err
	}
	if err := h.CheckDirectory(); err != nil {
		return fmt.Errorf("cache: restored state fails directory check: %w: %v", snapbin.ErrCorrupt, err)
	}
	return nil
}
