package cache

import (
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

func numaHierarchy(t *testing.T) (*Hierarchy, memory.StripedNodes) {
	t.Helper()
	nodes := memory.StripedNodes{N: 2, Stripe: 1 << 32}
	h, err := NewHierarchy(topology.OpenPower720(), topology.NUMALatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	h.SetNUMA(nodes)
	return h, nodes
}

func TestNUMALocalMemoryFill(t *testing.T) {
	h, _ := numaHierarchy(t)
	// Node 0 address accessed from chip 0: local memory.
	addr := memory.Addr(0x10000)
	r := h.Access(0, addr, false)
	if r.Source != SrcMemory {
		t.Fatalf("source = %v, want local memory", r.Source)
	}
	if r.Cycles != h.Latencies().Memory {
		t.Errorf("cycles = %d, want local memory latency %d", r.Cycles, h.Latencies().Memory)
	}
}

func TestNUMARemoteMemoryFill(t *testing.T) {
	h, nodes := numaHierarchy(t)
	// Node 1 address accessed from chip 0: remote memory.
	addr := memory.Addr(uint64(nodes.Stripe) + 0x10000)
	if nodes.NodeOf(addr) != 1 {
		t.Fatal("test address not homed on node 1")
	}
	r := h.Access(0, addr, false)
	if r.Source != SrcRemoteMemory {
		t.Fatalf("source = %v, want remote memory", r.Source)
	}
	if r.Cycles != h.Latencies().RemoteMemory {
		t.Errorf("cycles = %d, want remote memory latency %d", r.Cycles, h.Latencies().RemoteMemory)
	}
	if !r.Source.CrossChip() {
		t.Error("remote memory is a cross-chip access")
	}
	if r.Source.Remote() {
		t.Error("remote memory is NOT a remote *cache* access")
	}
	// From chip 1 the same address is local.
	h.FlushAll()
	r = h.Access(4, addr, false)
	if r.Source != SrcMemory {
		t.Errorf("chip-1 access = %v, want local memory", r.Source)
	}
}

func TestNUMACacheHitsUnaffected(t *testing.T) {
	h, nodes := numaHierarchy(t)
	addr := memory.Addr(uint64(nodes.Stripe) + 0x20000)
	h.Access(0, addr, false) // remote-memory fill
	r := h.Access(0, addr, false)
	if r.Source != SrcL1 {
		t.Errorf("second access = %v, want L1 hit (NUMA only affects fills)", r.Source)
	}
}

func TestNUMADisabledWithoutNodeMap(t *testing.T) {
	h, err := NewHierarchy(topology.OpenPower720(), topology.NUMALatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	addr := memory.Addr(0x10000 + (1 << 32))
	r := h.Access(0, addr, false)
	if r.Source != SrcMemory {
		t.Errorf("without a node map every fill is local memory, got %v", r.Source)
	}
	// And zero RemoteMemory latency also disables the split.
	lat := topology.DefaultLatencies()
	h2, err := NewHierarchy(topology.OpenPower720(), lat, SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	h2.SetNUMA(memory.StripedNodes{N: 2, Stripe: 1 << 32})
	r = h2.Access(0, addr, false)
	if r.Source != SrcMemory {
		t.Errorf("zero RemoteMemory latency should disable the split, got %v", r.Source)
	}
}

func TestNUMARemoteCacheBeatsRemoteMemory(t *testing.T) {
	// A line homed on node 1 but cached by chip 1 is fetched from chip
	// 1's cache (remote L2), not from memory: the snoop happens first.
	h, nodes := numaHierarchy(t)
	addr := memory.Addr(uint64(nodes.Stripe) + 0x30000)
	h.Access(4, addr, false) // chip 1 caches its local line
	r := h.Access(0, addr, false)
	if r.Source != SrcRemoteL2 {
		t.Errorf("source = %v, want remote-L2 (cache-to-cache beats memory)", r.Source)
	}
}
