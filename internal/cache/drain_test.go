package cache

import (
	"bytes"
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/snapbin"
	"threadcluster/internal/topology"
)

// laneStep is one recorded lane access of a slice, grouped by chip so
// both hierarchies replay identical per-chip streams (the order the
// chip-parallel engine produces them in).
type laneStep struct {
	cpu   topology.CPUID
	addr  memory.Addr
	write bool
}

// TestSliceBarrierBatchedVsSerial is the batched drain's differential
// oracle: identical multi-chip slice streams driven through two
// hierarchies, one draining each barrier through the batched sorted-run
// SliceBarrier and the other through the op-by-op reference
// sliceBarrierSerial, must stay byte-identical — every counter, the
// directory occupancy AND its peak high-water mark after every single
// barrier, and the full canonical SaveState encoding (cache contents,
// LRU stamps, presence table, shards) at the end.
func TestSliceBarrierBatchedVsSerial(t *testing.T) {
	topos := []struct {
		name string
		topo topology.Topology
	}{
		{"open720", topology.OpenPower720()},
		{"power5-32way", topology.Power5_32Way()},
	}
	for _, tc := range topos {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 42} {
				cfg := SmallConfig()
				cfg.Coherence = CoherenceDirectory
				batched, err := NewHierarchy(tc.topo, topology.DefaultLatencies(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				serial, err := NewHierarchy(tc.topo, topology.DefaultLatencies(), cfg)
				if err != nil {
					t.Fatal(err)
				}
				w := newDiffWorkload(tc.topo, 2*tc.topo.NumCPUs(), 96, seed)
				slices := 300
				perSlice := 48 * tc.topo.Chips
				if testing.Short() {
					slices = 60
				}
				byChip := make([][]laneStep, tc.topo.Chips)
				for s := 0; s < slices; s++ {
					for chip := range byChip {
						byChip[chip] = byChip[chip][:0]
					}
					for i := 0; i < perSlice; i++ {
						cpu, addr, write := w.step()
						chip := tc.topo.ChipOf(cpu)
						byChip[chip] = append(byChip[chip], laneStep{cpu, addr, write})
					}
					for chip := range byChip {
						lb, ls := batched.Lane(chip), serial.Lane(chip)
						for _, st := range byChip[chip] {
							rb := lb.Access(st.cpu, st.addr, st.write)
							rs := ls.Access(st.cpu, st.addr, st.write)
							if rb != rs {
								t.Fatalf("seed %d slice %d: access diverged before any barrier difference: %+v vs %+v", seed, s, rb, rs)
							}
						}
					}
					batched.SliceBarrier()
					serial.sliceBarrierSerial()
					compareDrainState(t, seed, s, batched, serial)
				}
				be, se := &snapbin.Enc{}, &snapbin.Enc{}
				if err := batched.SaveState(be); err != nil {
					t.Fatal(err)
				}
				if err := serial.SaveState(se); err != nil {
					t.Fatal(err)
				}
				if !bytes.Equal(be.Bytes(), se.Bytes()) {
					t.Fatalf("seed %d: SaveState encodings diverge (%d vs %d bytes): the batched drain is not byte-identical to the serial reference",
						seed, len(be.Bytes()), len(se.Bytes()))
				}
			}
		})
	}
}

func compareDrainState(t *testing.T, seed int64, slice int, batched, serial *Hierarchy) {
	t.Helper()
	fail := func(what string, b, s interface{}) {
		t.Fatalf("seed %d slice %d: %s diverged: batched %v, serial %v", seed, slice, what, b, s)
	}
	if b, s := batched.DirectoryLines(), serial.DirectoryLines(); b != s {
		fail("DirectoryLines", b, s)
	}
	if b, s := batched.DirectoryPeakLines(), serial.DirectoryPeakLines(); b != s {
		fail("DirectoryPeakLines", b, s)
	}
	if b, s := batched.SourceCounts(), serial.SourceCounts(); b != s {
		fail("SourceCounts", b, s)
	}
	if b, s := batched.SourceCycles(), serial.SourceCycles(); b != s {
		fail("SourceCycles", b, s)
	}
	if b, s := batched.InvalidationsSent(), serial.InvalidationsSent(); b != s {
		fail("InvalidationsSent", b, s)
	}
	if b, s := batched.Upgrades(), serial.Upgrades(); b != s {
		fail("Upgrades", b, s)
	}
	if b, s := batched.Writebacks(), serial.Writebacks(); b != s {
		fail("Writebacks", b, s)
	}
	if b, s := batched.SnoopProbesAvoided(), serial.SnoopProbesAvoided(); b != s {
		fail("SnoopProbesAvoided", b, s)
	}
	if err := batched.CheckDirectory(); err != nil {
		t.Fatalf("seed %d slice %d: batched directory check: %v", seed, slice, err)
	}
	if err := serial.CheckDirectory(); err != nil {
		t.Fatalf("seed %d slice %d: serial directory check: %v", seed, slice, err)
	}
}
