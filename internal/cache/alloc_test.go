package cache

import (
	"testing"

	"threadcluster/internal/topology"
)

// TestAccessZeroAlloc pins the allocation-free hot path: once the
// directory tables have grown to the workload's working set, a
// sharing-heavy mixed access stream must not allocate at all — neither in
// SetAssoc, nor in the lane access path, nor in the barrier drain that
// Hierarchy.Access runs inline. Table growth and mailbox capacity are
// amortized startup costs, which the warm-up pass pays.
func TestAccessZeroAlloc(t *testing.T) {
	for _, mode := range []CoherenceMode{CoherenceDirectory, CoherenceBroadcast} {
		mode := mode
		t.Run(mode.String(), func(t *testing.T) {
			topo := topology.Power5_32Way()
			h, err := NewHierarchy(topo, topology.DefaultLatencies(), SmallConfig())
			if err != nil {
				t.Fatal(err)
			}
			if mode == CoherenceBroadcast {
				cfg := SmallConfig()
				cfg.Coherence = CoherenceBroadcast
				if h, err = NewHierarchy(topo, topology.DefaultLatencies(), cfg); err != nil {
					t.Fatal(err)
				}
			}
			ops := coherenceOps(topo, 1<<14)
			// Warm-up: one full pass sizes every table and mailbox.
			for _, op := range ops {
				h.Access(op.cpu, op.addr, op.write)
			}
			i := 0
			avg := testing.AllocsPerRun(len(ops), func() {
				op := ops[i%len(ops)]
				h.Access(op.cpu, op.addr, op.write)
				i++
			})
			if avg != 0 {
				t.Fatalf("%s Access allocates %v allocs/op, want 0", mode, avg)
			}
		})
	}
}

// TestSetAssocZeroAlloc pins the slab-backed cache itself: every probe
// primitive (Lookup, Insert including evictions, Peek, Invalidate,
// Downgrade) runs against preallocated slabs and must never allocate.
func TestSetAssocZeroAlloc(t *testing.T) {
	c, err := NewSetAssoc(benchHotConfig)
	if err != nil {
		t.Fatal(err)
	}
	ops := benchHotOps()
	i := 0
	step := func() {
		op := ops[i&benchHotMask]
		switch op.kind {
		case 1:
			c.Invalidate(op.line)
		case 2:
			c.Downgrade(op.line)
		case 3:
			c.Peek(op.line)
		default:
			if c.Lookup(op.line) == Invalid {
				c.Insert(op.line, op.st)
			}
		}
		i++
	}
	if avg := testing.AllocsPerRun(len(ops), step); avg != 0 {
		t.Fatalf("SetAssoc hot path allocates %v allocs/op, want 0", avg)
	}
}

// TestSliceBarrierZeroAlloc drives a deferred multi-chip slice directly
// through the lanes — the exact path the chip-parallel engine runs — and
// requires the whole slice + barrier cycle to stay allocation-free after
// warm-up.
func TestSliceBarrierZeroAlloc(t *testing.T) {
	topo := topology.Power5_32Way()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ops := coherenceOps(topo, 1<<14)
	slice := func() {
		// 64 accesses per chip per slice, round-robined over the stream.
		for chip := 0; chip < topo.Chips; chip++ {
			l := h.Lane(chip)
			for k := 0; k < 64; k++ {
				op := ops[(chip*64+k)%len(ops)]
				cpu := topology.CPUID((int(op.cpu) + chip) % topo.NumCPUs())
				if h.topo.ChipOf(cpu) != chip {
					cpu = topology.CPUID(chip * topo.CoresPerChip * topo.ContextsPerCore)
				}
				l.Access(cpu, op.addr, op.write)
			}
		}
		h.SliceBarrier()
	}
	for i := 0; i < 50; i++ {
		slice()
	}
	if avg := testing.AllocsPerRun(200, slice); avg != 0 {
		t.Fatalf("deferred slice allocates %v allocs/run, want 0", avg)
	}
}
