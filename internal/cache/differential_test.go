package cache

import (
	"math/rand"
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

// refModel is an intentionally naive re-implementation of the coherence
// *classification* semantics (ignoring capacity): it tracks, per chip,
// the set of lines the chip could possibly hold, and which chips hold a
// line at all, with writes invalidating other holders. The real hierarchy
// must never report a source that is impossible under the reference —
// differential testing for the coherence logic, independent of LRU
// details.
type refModel struct {
	topo topology.Topology
	// holder[line] = set of chips that may hold the line.
	holder map[memory.Addr]map[int]bool
}

func newRefModel(topo topology.Topology) *refModel {
	return &refModel{topo: topo, holder: make(map[memory.Addr]map[int]bool)}
}

// access returns the set of legal sources for the access, then updates
// the model.
func (r *refModel) access(cpu topology.CPUID, line memory.Addr, write bool) map[Source]bool {
	chip := r.topo.ChipOf(cpu)
	h := r.holder[line]
	legal := make(map[Source]bool)
	if h != nil && h[chip] {
		// Local copies may exist at any level (or may have been evicted,
		// so memory and remote sources stay legal if others hold it).
		legal[SrcL1] = true
		legal[SrcL2] = true
		legal[SrcL3] = true
	}
	othersHold := false
	if h != nil {
		for c := range h {
			if c != chip {
				othersHold = true
			}
		}
	}
	if othersHold {
		legal[SrcRemoteL2] = true
		legal[SrcRemoteL3] = true
	}
	// Memory is always reachable (local copies can be evicted silently).
	legal[SrcMemory] = true

	// Update: accessing chip now holds the line.
	if h == nil {
		h = make(map[int]bool)
		r.holder[line] = h
	}
	if write {
		for c := range h {
			delete(h, c)
		}
	}
	h[chip] = true
	return legal
}

// twin builds one broadcast and one directory hierarchy with otherwise
// identical configuration.
func twin(t testing.TB, topo topology.Topology, lat topology.Latencies, cfg HierarchyConfig) (bc, dir *Hierarchy) {
	t.Helper()
	cfg.Coherence = CoherenceBroadcast
	bc, err := NewHierarchy(topo, lat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Coherence = CoherenceDirectory
	dir, err = NewHierarchy(topo, lat, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if dir.Coherence() != CoherenceDirectory {
		t.Fatalf("directory mode not effective on %v", topo)
	}
	return bc, dir
}

// compareCounters fails the test when any observable coherence or
// attribution counter diverges between the two implementations.
func compareCounters(t *testing.T, op int, bc, dir *Hierarchy) {
	t.Helper()
	if bc.SourceCounts() != dir.SourceCounts() {
		t.Fatalf("op %d: SourceCounts diverged:\nbroadcast %v\ndirectory %v", op, bc.SourceCounts(), dir.SourceCounts())
	}
	if bc.SourceCycles() != dir.SourceCycles() {
		t.Fatalf("op %d: SourceCycles diverged:\nbroadcast %v\ndirectory %v", op, bc.SourceCycles(), dir.SourceCycles())
	}
	if b, d := bc.InvalidationsSent(), dir.InvalidationsSent(); b != d {
		t.Fatalf("op %d: InvalidationsSent: broadcast %d, directory %d", op, b, d)
	}
	if b, d := bc.Upgrades(), dir.Upgrades(); b != d {
		t.Fatalf("op %d: Upgrades: broadcast %d, directory %d", op, b, d)
	}
	if b, d := bc.Writebacks(), dir.Writebacks(); b != d {
		t.Fatalf("op %d: Writebacks: broadcast %d, directory %d", op, b, d)
	}
}

// diffWorkload models software threads with private and shared working
// sets that occasionally migrate between CPUs — the multi-chip
// read/write/migration sequences the directory must survive. One instance
// drives both hierarchies so their access streams are identical.
type diffWorkload struct {
	rng     *rand.Rand
	topo    topology.Topology
	homes   []topology.CPUID // current CPU of each simulated thread
	private []int            // disjoint line-range base per thread
	lines   int              // lines per private range / in the shared range
}

func newDiffWorkload(topo topology.Topology, threads, lines int, seed int64) *diffWorkload {
	w := &diffWorkload{
		rng:   rand.New(rand.NewSource(seed)),
		topo:  topo,
		lines: lines,
	}
	for i := 0; i < threads; i++ {
		w.homes = append(w.homes, topology.CPUID(w.rng.Intn(topo.NumCPUs())))
		w.private = append(w.private, (i+1)*lines)
	}
	return w
}

// step produces the next access: which CPU issues it, the line, and
// whether it is a write. 2% of steps migrate a thread to a random CPU
// (often on another chip) instead of accessing memory.
func (w *diffWorkload) step() (cpu topology.CPUID, addr memory.Addr, write bool) {
	for {
		th := w.rng.Intn(len(w.homes))
		if w.rng.Intn(50) == 0 {
			w.homes[th] = topology.CPUID(w.rng.Intn(w.topo.NumCPUs()))
			continue
		}
		base := 0 // shared range
		if w.rng.Intn(2) == 0 {
			base = w.private[th]
		}
		line := base + w.rng.Intn(w.lines)
		return w.homes[th], memory.Addr(uint64(line) * memory.LineSize), w.rng.Intn(3) == 0
	}
}

// TestBroadcastDirectoryEquivalence is the differential harness of the
// coherence fast path: identical randomized multi-chip
// read/write/migration sequences replayed through both implementations
// must yield byte-identical per-access results (source, latency, L1-miss
// flag) and byte-identical attribution and coherence counters. The
// directory is only allowed to be faster, never observably different.
func TestBroadcastDirectoryEquivalence(t *testing.T) {
	cases := []struct {
		name string
		topo topology.Topology
		lat  topology.Latencies
		cfg  HierarchyConfig
		numa bool
		ops  int
	}{
		{name: "open720/small", topo: topology.OpenPower720(), lat: topology.DefaultLatencies(), cfg: SmallConfig(), ops: 150_000},
		{name: "open720/power5", topo: topology.OpenPower720(), lat: topology.DefaultLatencies(), cfg: Power5Config(), ops: 60_000},
		{name: "32way/small", topo: topology.Power5_32Way(), lat: topology.DefaultLatencies(), cfg: SmallConfig(), ops: 150_000},
		{name: "32way/power5", topo: topology.Power5_32Way(), lat: topology.DefaultLatencies(), cfg: Power5Config(), ops: 60_000},
		{name: "niagara/small", topo: topology.NiagaraLike(), lat: topology.DefaultLatencies(), cfg: SmallConfig(), ops: 60_000},
		{name: "open720/numa", topo: topology.OpenPower720(), lat: topology.NUMALatencies(), cfg: SmallConfig(), numa: true, ops: 100_000},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 42, 1234} {
				bc, dir := twin(t, tc.topo, tc.lat, tc.cfg)
				if tc.numa {
					nodes := memory.InterleavedNodes{N: tc.topo.Chips, Granularity: 4096}
					bc.SetNUMA(nodes)
					dir.SetNUMA(nodes)
				}
				w := newDiffWorkload(tc.topo, 2*tc.topo.NumCPUs(), 96, seed)
				ops := tc.ops
				if testing.Short() {
					ops /= 10
				}
				for i := 0; i < ops; i++ {
					cpu, addr, write := w.step()
					rb := bc.Access(cpu, addr, write)
					rd := dir.Access(cpu, addr, write)
					if rb != rd {
						t.Fatalf("seed %d op %d: cpu %d line %#x write=%v:\nbroadcast %+v\ndirectory %+v",
							seed, i, cpu, uint64(addr), write, rb, rd)
					}
					if i%10_000 == 0 {
						compareCounters(t, i, bc, dir)
					}
				}
				compareCounters(t, ops, bc, dir)
				if err := dir.CheckDirectory(); err != nil {
					t.Fatalf("seed %d: directory out of sync after run: %v", seed, err)
				}
				if dir.SnoopProbesAvoided() == 0 {
					t.Errorf("seed %d: directory avoided no probes; workload never exercised coherence", seed)
				}
			}
		})
	}
}

// TestDirectoryMatchesScanAfterEveryOp is the per-operation invariant: the
// directory must agree with a ground-truth scan of all cache contents
// after every single access, including evictions, spills to the victim L3
// and inclusion purges.
func TestDirectoryMatchesScanAfterEveryOp(t *testing.T) {
	topo := topology.Power5_32Way()
	cfg := SmallConfig()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	w := newDiffWorkload(topo, 16, 64, 7)
	ops := 4000
	if testing.Short() {
		ops = 800
	}
	for i := 0; i < ops; i++ {
		cpu, addr, write := w.step()
		h.Access(cpu, addr, write)
		if err := h.CheckDirectory(); err != nil {
			t.Fatalf("op %d (cpu %d line %#x write=%v): %v", i, cpu, uint64(addr), write, err)
		}
	}
	if h.DirectoryLines() == 0 || h.DirectoryPeakLines() < h.DirectoryLines() {
		t.Errorf("implausible occupancy: lines=%d peak=%d", h.DirectoryLines(), h.DirectoryPeakLines())
	}
	h.FlushAll()
	if h.DirectoryLines() != 0 {
		t.Errorf("FlushAll left %d directory lines", h.DirectoryLines())
	}
	if err := h.CheckDirectory(); err != nil {
		t.Errorf("after FlushAll: %v", err)
	}
}

// TestBroadcastFallbackOnWideMachines: machines beyond the 64-core bitmask
// width silently run the broadcast protocol.
func TestBroadcastFallbackOnWideMachines(t *testing.T) {
	wide := topology.Topology{Chips: 65, CoresPerChip: 1, ContextsPerCore: 1}
	h, err := NewHierarchy(wide, topology.DefaultLatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if h.Coherence() != CoherenceBroadcast {
		t.Errorf("mode = %v on a 65-chip machine, want broadcast fallback", h.Coherence())
	}
	h.Access(0, 0, true)
	if h.DirectoryLines() != 0 || h.SnoopProbesAvoided() != 0 {
		t.Error("broadcast fallback should not track directory state")
	}
}

func TestHierarchyDifferentialAgainstReference(t *testing.T) {
	topo := topology.OpenPower720()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(topo)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200_000; i++ {
		cpu := topology.CPUID(rng.Intn(topo.NumCPUs()))
		line := memory.Addr(uint64(rng.Intn(512)) * memory.LineSize)
		write := rng.Intn(3) == 0
		legal := ref.access(cpu, line, write)
		res := h.Access(cpu, line, write)
		if !legal[res.Source] {
			t.Fatalf("op %d: cpu %d line %#x write=%v: source %v impossible (legal: %v)",
				i, cpu, uint64(line), write, res.Source, legal)
		}
	}
}

// The sharpest corollary: after a write by chip A, no other chip can
// satisfy a read remotely until someone re-shares — i.e., a read by chip A
// immediately after its own write can never be remote.
func TestNoRemoteAfterOwnWrite(t *testing.T) {
	topo := topology.OpenPower720()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50_000; i++ {
		cpu := topology.CPUID(rng.Intn(topo.NumCPUs()))
		line := memory.Addr(uint64(rng.Intn(256)) * memory.LineSize)
		h.Access(cpu, line, true)
		res := h.Access(cpu, line, false)
		if res.Source.Remote() {
			t.Fatalf("op %d: read after own write went remote (%v)", i, res.Source)
		}
		// Noise traffic from other CPUs.
		for j := 0; j < 3; j++ {
			h.Access(topology.CPUID(rng.Intn(topo.NumCPUs())),
				memory.Addr(uint64(rng.Intn(256))*memory.LineSize), rng.Intn(2) == 0)
		}
	}
}
