package cache

import (
	"math/rand"
	"testing"

	"threadcluster/internal/memory"
	"threadcluster/internal/topology"
)

// refModel is an intentionally naive re-implementation of the coherence
// *classification* semantics (ignoring capacity): it tracks, per chip,
// the set of lines the chip could possibly hold, and which chips hold a
// line at all, with writes invalidating other holders. The real hierarchy
// must never report a source that is impossible under the reference —
// differential testing for the coherence logic, independent of LRU
// details.
type refModel struct {
	topo topology.Topology
	// holder[line] = set of chips that may hold the line.
	holder map[memory.Addr]map[int]bool
}

func newRefModel(topo topology.Topology) *refModel {
	return &refModel{topo: topo, holder: make(map[memory.Addr]map[int]bool)}
}

// access returns the set of legal sources for the access, then updates
// the model.
func (r *refModel) access(cpu topology.CPUID, line memory.Addr, write bool) map[Source]bool {
	chip := r.topo.ChipOf(cpu)
	h := r.holder[line]
	legal := make(map[Source]bool)
	if h != nil && h[chip] {
		// Local copies may exist at any level (or may have been evicted,
		// so memory and remote sources stay legal if others hold it).
		legal[SrcL1] = true
		legal[SrcL2] = true
		legal[SrcL3] = true
	}
	othersHold := false
	if h != nil {
		for c := range h {
			if c != chip {
				othersHold = true
			}
		}
	}
	if othersHold {
		legal[SrcRemoteL2] = true
		legal[SrcRemoteL3] = true
	}
	// Memory is always reachable (local copies can be evicted silently).
	legal[SrcMemory] = true

	// Update: accessing chip now holds the line.
	if h == nil {
		h = make(map[int]bool)
		r.holder[line] = h
	}
	if write {
		for c := range h {
			delete(h, c)
		}
	}
	h[chip] = true
	return legal
}

func TestHierarchyDifferentialAgainstReference(t *testing.T) {
	topo := topology.OpenPower720()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	ref := newRefModel(topo)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 200_000; i++ {
		cpu := topology.CPUID(rng.Intn(topo.NumCPUs()))
		line := memory.Addr(uint64(rng.Intn(512)) * memory.LineSize)
		write := rng.Intn(3) == 0
		legal := ref.access(cpu, line, write)
		res := h.Access(cpu, line, write)
		if !legal[res.Source] {
			t.Fatalf("op %d: cpu %d line %#x write=%v: source %v impossible (legal: %v)",
				i, cpu, uint64(line), write, res.Source, legal)
		}
	}
}

// The sharpest corollary: after a write by chip A, no other chip can
// satisfy a read remotely until someone re-shares — i.e., a read by chip A
// immediately after its own write can never be remote.
func TestNoRemoteAfterOwnWrite(t *testing.T) {
	topo := topology.OpenPower720()
	h, err := NewHierarchy(topo, topology.DefaultLatencies(), SmallConfig())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50_000; i++ {
		cpu := topology.CPUID(rng.Intn(topo.NumCPUs()))
		line := memory.Addr(uint64(rng.Intn(256)) * memory.LineSize)
		h.Access(cpu, line, true)
		res := h.Access(cpu, line, false)
		if res.Source.Remote() {
			t.Fatalf("op %d: read after own write went remote (%v)", i, res.Source)
		}
		// Noise traffic from other CPUs.
		for j := 0; j < 3; j++ {
			h.Access(topology.CPUID(rng.Intn(topo.NumCPUs())),
				memory.Addr(uint64(rng.Intn(256))*memory.LineSize), rng.Intn(2) == 0)
		}
	}
}
