package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestSnapFields(t *testing.T) {
	linttest.Run(t, lint.SnapFields, "testdata/snapfields", lint.ModulePath+"/internal/sim")
}

// TestSnapFieldsCrossPackage: the library component's snapshotability
// reaches the containing package as a fact.
func TestSnapFieldsCrossPackage(t *testing.T) {
	linttest.RunWithDeps(t, lint.SnapFields,
		[]linttest.Dep{{Dir: "testdata/snapfields_lib", AsPath: lint.ModulePath + "/internal/snapfieldslib"}},
		"testdata/snapfields_use", lint.ModulePath+"/internal/snapfieldsuse")
}

func TestSnapFieldsScope(t *testing.T) {
	for path, want := range map[string]bool{
		lint.ModulePath + "/internal/sim": true,
		lint.ModulePath + "/cmd/tcsim":    false,
		"other/module":                    false,
	} {
		if got := lint.SnapFields.Appropriate(path); got != want {
			t.Errorf("SnapFields.Appropriate(%q) = %v, want %v", path, got, want)
		}
	}
}
