package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestWallclock(t *testing.T) {
	linttest.Run(t, lint.Wallclock, "testdata/wallclock", lint.ModulePath+"/internal/sim")
}

// TestWallclockAllowlist runs a package full of wall-clock reads with
// its import path on the allowlist: everything passes.
func TestWallclockAllowlist(t *testing.T) {
	path := lint.ModulePath + "/cmd/progress"
	lint.WallclockAllowlist = []string{path}
	defer func() { lint.WallclockAllowlist = nil }()
	linttest.Run(t, lint.Wallclock, "testdata/wallclock_allowlisted", path)
}

// TestWallclockAllowlistPrefix: allowlist entries cover subpackages.
func TestWallclockAllowlistPrefix(t *testing.T) {
	lint.WallclockAllowlist = []string{lint.ModulePath + "/cmd"}
	defer func() { lint.WallclockAllowlist = nil }()
	if lint.Wallclock.Appropriate(lint.ModulePath + "/cmd/tcsim") {
		t.Errorf("cmd/tcsim should be exempt under a %s/cmd allowlist entry", lint.ModulePath)
	}
	if !lint.Wallclock.Appropriate(lint.ModulePath + "/internal/sim") {
		t.Errorf("internal/sim must stay covered regardless of the cmd allowlist")
	}
}
