package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

// TestCtxPlumb analyzes the golden package as internal/sweep, where the
// blocking-signature rule is in force.
func TestCtxPlumb(t *testing.T) {
	linttest.Run(t, lint.CtxPlumb, "testdata/ctxplumb", lint.ModulePath+"/internal/sweep")
}

// TestCtxPlumbLibraryScope analyzes a package outside the ctx-first API
// surface (internal/stats renders tables, nothing cancellable): blocking
// signatures pass, context.Background still fails.
func TestCtxPlumbLibraryScope(t *testing.T) {
	linttest.Run(t, lint.CtxPlumb, "testdata/ctxplumb_lib", lint.ModulePath+"/internal/stats")
}
