package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text   string
		names  []string
		reason string
	}{
		{"//tclint:allow wallclock", []string{"wallclock"}, ""},
		{"//tclint:allow wallclock -- progress output", []string{"wallclock"}, "progress output"},
		{"//tclint:allow detrand,maporder -- two at once", []string{"detrand", "maporder"}, "two at once"},
		{"//tclint:allow detrand maporder", []string{"detrand", "maporder"}, ""},
		{"//tclint:allow\tdetrand,\twallclock -- tab separators", []string{"detrand", "wallclock"}, "tab separators"},
		{"//tclint:allow * -- blanket", []string{"*"}, "blanket"},
		{"//tclint:allow seedflow --", []string{"seedflow"}, ""},    // empty reason is a bare allow
		{"//tclint:allow seedflow --   ", []string{"seedflow"}, ""}, // whitespace-only reason too
		{"//tclint:allow", nil, ""},            // no names, not a suppression
		{"//tclint:allowed nothing", nil, ""},  // different directive
		{"// tclint:allow wallclock", nil, ""}, // the directive admits no space, like //go:
		{"// ordinary comment", nil, ""},
	}
	for _, c := range cases {
		names, reason, ok := parseAllow(c.text)
		if ok != (len(c.names) > 0) || (ok && !reflect.DeepEqual(names, c.names)) || reason != c.reason {
			t.Errorf("parseAllow(%q) = %v, %q, %v; want %v, %q", c.text, names, reason, ok, c.names, c.reason)
		}
	}
}

// TestSuppressionIndex exercises placement semantics on parsed source:
// a comment covers its own line (trailing) and the line below
// (line-above), names are per-analyzer, and * is a wildcard.
func TestSuppressionIndex(t *testing.T) {
	const src = `package p

func f() {
	_ = 1 //tclint:allow detrand -- trailing placement
	//tclint:allow wallclock -- line-above placement
	_ = 2
	//tclint:allow * -- wildcard
	_ = 3
	_ = 4 //tclint:allow detrand,maporder -- multi-name
	//tclint:allowed near-miss is not a directive
	_ = 5
	_ = 6 //tclint:allow bare
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	idx, bare := collectSuppressions(fset, []*ast.File{f})
	cases := []struct {
		line     int
		analyzer string
		want     bool
	}{
		{4, "detrand", true},     // trailing: own line
		{5, "detrand", true},     // trailing comments also cover the next line
		{3, "detrand", false},    // but never the line above themselves
		{5, "wallclock", true},   // line-above: own line
		{6, "wallclock", true},   // line-above: covered line
		{6, "detrand", false},    // names are per-analyzer
		{8, "detrand", true},     // * allows anything
		{8, "anything", true},    // * allows anything
		{9, "detrand", true},     // multi-name list, first
		{9, "maporder", true},    // multi-name list, second
		{9, "errwrap", false},    // multi-name list excludes others
		{10, "near", false},      // //tclint:allowed is not ours
		{11, "near", false},      // and covers nothing below either
		{12, "bare", true},       // bare allows still suppress...
		{11, "wallclock", false}, // unrelated line
	}
	for _, c := range cases {
		if got := idx.allows("p.go", c.line, c.analyzer); got != c.want {
			t.Errorf("allows(p.go, %d, %q) = %v, want %v", c.line, c.analyzer, got, c.want)
		}
	}
	// ...but are reported as bare for RequireAllowReason enforcement.
	if len(bare) != 1 || bare[0].Line != 12 {
		t.Errorf("bare allows = %v, want exactly one at line 12", bare)
	}
}

// TestAllStable: the suite's composition and order is part of its
// public face (docs, CI output); pin it.
func TestAllStable(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	want := []string{"detrand", "wallclock", "maporder", "errwrap", "ctxplumb", "nodeprecated", "seedflow", "snapfields"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("All() = %v, want %v", names, want)
	}
}
