package lint

import (
	"reflect"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		text  string
		names []string
	}{
		{"//tclint:allow wallclock", []string{"wallclock"}},
		{"//tclint:allow wallclock -- progress output", []string{"wallclock"}},
		{"//tclint:allow detrand,maporder -- two at once", []string{"detrand", "maporder"}},
		{"//tclint:allow detrand maporder", []string{"detrand", "maporder"}},
		{"//tclint:allow * -- blanket", []string{"*"}},
		{"//tclint:allow", nil},            // no names, not a suppression
		{"//tclint:allowed nothing", nil},  // different directive
		{"// tclint:allow wallclock", nil}, // the directive admits no space, like //go:
		{"// ordinary comment", nil},
	}
	for _, c := range cases {
		names, ok := parseAllow(c.text)
		if ok != (len(c.names) > 0) || (ok && !reflect.DeepEqual(names, c.names)) {
			t.Errorf("parseAllow(%q) = %v, %v; want %v", c.text, names, ok, c.names)
		}
	}
}

// TestAllStable: the suite's composition and order is part of its
// public face (docs, CI output); pin it.
func TestAllStable(t *testing.T) {
	var names []string
	for _, a := range All() {
		names = append(names, a.Name)
	}
	want := []string{"detrand", "wallclock", "maporder", "errwrap", "ctxplumb", "nodeprecated"}
	if !reflect.DeepEqual(names, want) {
		t.Errorf("All() = %v, want %v", names, want)
	}
}
