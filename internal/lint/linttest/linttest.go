// Package linttest is a miniature analysistest: it runs one analyzer
// over a golden package in testdata and diffs the diagnostics against
// `// want "regexp"` comments. A want comment names every diagnostic
// expected on its own line:
//
//	rand.Seed(1) // want `rand\.Seed`
//	x := f()     // want "first finding" "second finding"
//
// Both double-quoted and backquoted expectation strings are accepted;
// each is a regular expression matched against the diagnostic message.
// Lines without a want comment must produce no diagnostics.
//
// Golden packages are type-checked with the standard library's source
// importer plus a module-aware fallback: imports under the module path
// are parsed and type-checked from the real package directories at the
// repository root. Analyzer heuristics keyed to module types (the
// maporder metrics-registry rule) can therefore be exercised against
// the genuine article; everything else may still be declared locally.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"threadcluster/internal/lint"
)

// wantRe matches one expectation string: "..." or `...`.
var wantRe = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

// Run analyzes the golden package in dir as if its import path were
// asPath (scoping rules key off the path) and reports mismatches
// against the // want comments through t.
func Run(t *testing.T, a *lint.Analyzer, dir, asPath string) {
	t.Helper()
	RunWithDeps(t, a, nil, dir, asPath)
}

// Dep is one golden dependency package for RunWithDeps.
type Dep struct {
	Dir    string
	AsPath string
}

// RunWithDeps analyzes one or more golden dependency packages followed
// by the package under test, threading one facts store through all of
// them — the multi-package scenario the interprocedural analyzers
// exist for. Each dep is registered under its AsPath so the later
// packages can import it by that path, and its // want comments are
// checked too (a dep may carry its own expected diagnostics).
func RunWithDeps(t *testing.T, a *lint.Analyzer, deps []Dep, dir, asPath string) {
	t.Helper()
	fset := token.NewFileSet()
	im := newModuleImporter(t, fset)
	facts := lint.NewFacts()
	var diags []lint.Diagnostic
	var wants []want
	for _, dep := range append(append([]Dep(nil), deps...), Dep{Dir: dir, AsPath: asPath}) {
		ds, ws := analyze(t, a, dep.Dir, dep.AsPath, fset, im, facts)
		diags = append(diags, ds...)
		wants = append(wants, ws...)
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})

	matched := make([]bool, len(wants))
	for _, d := range diags {
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == filepath.Base(d.Pos.Filename) && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s:%d: %s", filepath.Base(d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.re)
		}
	}
}

type want struct {
	file string
	line int
	re   *regexp.Regexp
}

func analyze(t *testing.T, a *lint.Analyzer, dir, asPath string, fset *token.FileSet, im *moduleImporter, facts *lint.Facts) ([]lint.Diagnostic, []want) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	var files []*ast.File
	var wants []want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		full := filepath.Join(dir, e.Name())
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		files = append(files, f)
		ws, err := collectWants(fset, f, e.Name())
		if err != nil {
			t.Fatalf("linttest: %v", err)
		}
		wants = append(wants, ws...)
	}
	if len(files) == 0 {
		t.Fatalf("linttest: no Go files in %s", dir)
	}

	info := lint.NewTypesInfo()
	conf := types.Config{Importer: im}
	tpkg, err := conf.Check(asPath, fset, files, info)
	if err != nil {
		t.Fatalf("linttest: type-checking %s: %v", dir, err)
	}
	// Register the package so later golden packages in the same run can
	// import it by its declared path (shadowing any real module package).
	im.pkgs[asPath] = tpkg
	pkg := &lint.Package{PkgPath: asPath, Fset: fset, Files: files, Types: tpkg, Info: info}
	diags, err := lint.RunPackageFacts(pkg, []*lint.Analyzer{a}, facts)
	if err != nil {
		t.Fatalf("linttest: %v", err)
	}
	return diags, wants
}

// moduleImporter resolves imports under the module path by parsing and
// type-checking the real package directory at the repository root
// (memoized per run); everything else falls through to the standard
// source importer. Test files are skipped, matching how go vet hands
// packages to the analyzers.
type moduleImporter struct {
	t    *testing.T
	fset *token.FileSet
	std  types.Importer
	root string
	pkgs map[string]*types.Package
}

func newModuleImporter(t *testing.T, fset *token.FileSet) *moduleImporter {
	return &moduleImporter{
		t:    t,
		fset: fset,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: map[string]*types.Package{},
	}
}

func (im *moduleImporter) Import(path string) (*types.Package, error) {
	if path != lint.ModulePath && !strings.HasPrefix(path, lint.ModulePath+"/") {
		return im.std.Import(path)
	}
	if pkg, ok := im.pkgs[path]; ok {
		return pkg, nil
	}
	if im.root == "" {
		root, err := moduleRoot()
		if err != nil {
			return nil, err
		}
		im.root = root
	}
	dir := filepath.Join(im.root, filepath.FromSlash(strings.TrimPrefix(path, lint.ModulePath)))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("linttest: module import %s: %v", path, err)
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(im.fset, filepath.Join(dir, name), nil, 0)
		if err != nil {
			return nil, fmt.Errorf("linttest: module import %s: %v", path, err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("linttest: module import %s: no Go files in %s", path, dir)
	}
	conf := types.Config{Importer: im}
	pkg, err := conf.Check(path, im.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("linttest: module import %s: %v", path, err)
	}
	im.pkgs[path] = pkg
	return pkg, nil
}

// moduleRoot walks up from the working directory (the package dir of the
// running test) to the directory holding go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("linttest: no go.mod above %s", dir)
		}
		dir = parent
	}
}

func collectWants(fset *token.FileSet, f *ast.File, base string) ([]want, error) {
	var wants []want
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimPrefix(c.Text, "//")
			text = strings.TrimSpace(text)
			if !strings.HasPrefix(text, "want ") {
				continue
			}
			line := fset.Position(c.Pos()).Line
			specs := wantRe.FindAllString(text[len("want "):], -1)
			if len(specs) == 0 {
				return nil, fmt.Errorf("%s:%d: malformed want comment %q", base, line, c.Text)
			}
			for _, spec := range specs {
				pat := spec[1 : len(spec)-1]
				if spec[0] == '"' {
					pat = strings.ReplaceAll(pat, `\"`, `"`)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %q: %v", base, line, pat, err)
				}
				wants = append(wants, want{file: base, line: line, re: re})
			}
		}
	}
	return wants, nil
}
