package lint

import (
	"go/ast"
	"strings"
)

// WallclockAllowlist holds package import-path prefixes exempt from the
// wallclock analyzer (set with tclint's -wallclock.allow flag). Wall
// time is permitted there wholesale — meant for cmd/ progress output,
// never for internal/ simulation packages. Individual deliberate uses
// elsewhere take a `//tclint:allow wallclock -- reason` comment instead.
var WallclockAllowlist []string

// wallclockFuncs are the time functions that read the wall clock.
var wallclockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

// Wallclock forbids reading the wall clock in the simulator. Simulated
// time is cycle counts; any result, metric or AccessResult derived from
// time.Now varies run to run and breaks the byte-identical contract the
// sweep runner and the coherence differential harness depend on. Wall
// time is legitimate only for operator-facing progress output (cmd/,
// annotated) and benchmarks (_test.go files are not checked).
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc: "forbid time.Now/time.Since/time.Until outside annotated progress output; " +
		"simulated time is cycle counts and wall time breaks run-to-run determinism",
	Appropriate: func(path string) bool {
		if !inModule(path) {
			return false
		}
		for _, prefix := range WallclockAllowlist {
			if path == prefix || strings.HasPrefix(path, prefix+"/") {
				return false
			}
		}
		return true
	},
	Run: runWallclock,
}

func runWallclock(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if pkgNameOf(pass.TypesInfo, sel) != "time" || !wallclockFuncs[sel.Sel.Name] {
				return true
			}
			pass.Reportf(sel.Pos(), "time.%s reads the wall clock, which breaks run-to-run determinism; use simulated cycles, or annotate operator-facing timing with //tclint:allow wallclock -- reason", sel.Sel.Name)
			return true
		})
	}
	return nil
}
