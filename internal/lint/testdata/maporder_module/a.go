// Package maporder_module is maporder golden coverage for the
// metrics-registry heuristic against the real module package: ranging
// over a map and feeding a genuine metrics.Registry (or a metric handed
// out by one) leaks the randomized iteration order into series creation
// and update order. The fmt/Write paths have their own goldens in
// testdata/maporder; this package pins down the module-import path.
package maporder_module

import (
	"sort"

	"threadcluster/internal/metrics"
)

func registryInsideRange(reg *metrics.Registry, perChip map[int]uint64) {
	for chip, n := range perChip {
		_ = chip
		reg.Counter("coherence_ops", nil).Add(n) // want `feeding the metrics registry \(Registry\.Counter\)` `feeding the metrics registry \(Counter\.Add\)`
	}
}

func metricValueInsideRange(reg *metrics.Registry, perChip map[int]uint64) {
	c := reg.Counter("coherence_ops", nil)
	for _, n := range perChip {
		c.Add(n) // want `feeding the metrics registry \(Counter\.Add\)`
	}
}

func histogramInsideRange(h *metrics.Histogram, lat map[string]uint64) {
	for _, v := range lat {
		h.Observe(v) // want `feeding the metrics registry \(Histogram\.Observe\)`
	}
}

// Sorting the keys first and feeding the registry from the sorted slice
// is the documented fix — no diagnostics.
func registryAfterSort(reg *metrics.Registry, perChip map[int]uint64) {
	chips := make([]int, 0, len(perChip))
	for chip := range perChip {
		chips = append(chips, chip)
	}
	sort.Ints(chips)
	for _, chip := range chips {
		reg.Counter("coherence_ops", nil).Add(perChip[chip])
	}
}

// Reading a metric inside a map range is still a method on a metrics
// type, so the heuristic flags it: reads don't mutate the registry, but
// the analyzer deliberately stays coarse rather than model value flow.
func readInsideRange(c *metrics.Counter, perChip map[int]uint64) uint64 {
	var total uint64
	for range perChip {
		total += c.Value() // want `feeding the metrics registry \(Counter\.Value\)`
	}
	return total
}

// Order-free work over the same map stays silent.
func sumInsideRange(perChip map[int]uint64) uint64 {
	var total uint64
	for _, n := range perChip {
		total += n
	}
	return total
}
