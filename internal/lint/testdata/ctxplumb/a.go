// Package a is the ctxplumb golden package, analyzed as if it were
// internal/sweep: exported blocking functions must take a ctx first,
// and library code never manufactures a root context.
package a

import (
	"context"
	"sync"
	"time"
)

// Drain blocks on a channel receive without any way to cancel.
func Drain(ch chan int) int { // want `exported Drain can block \(channel receive\) but takes no context\.Context`
	return <-ch
}

// Feed blocks on a channel send.
func Feed(ch chan int, v int) { // want `exported Feed can block \(channel send\)`
	ch <- v
}

// Gather blocks in a WaitGroup wait.
func Gather(wg *sync.WaitGroup) { // want `exported Gather can block \(sync\.WaitGroup\.Wait\)`
	wg.Wait()
}

// Nap blocks in time.Sleep.
func Nap() { // want `exported Nap can block \(time\.Sleep\)`
	time.Sleep(time.Millisecond)
}

// Shuffle has a ctx, but hidden in the middle of the signature.
func Shuffle(n int, ctx context.Context, ch chan int) { // want `takes a context\.Context but not as its first parameter`
	for i := 0; i < n; i++ {
		ch <- i
	}
}

// DrainCtx is the sanctioned shape: ctx first, select on both.
func DrainCtx(ctx context.Context, ch chan int) (int, error) {
	select {
	case v := <-ch:
		return v, nil
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// TryDrain never blocks: its select has a default clause.
func TryDrain(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// drain is unexported; the signature rule only covers the API surface.
func drain(ch chan int) int {
	return <-ch
}

// Spawn only blocks inside the goroutine it launches, which is the
// goroutine's business, not the caller's.
func Spawn(ch chan int) {
	go func() {
		ch <- 1
	}()
}

// Pure does not block at all.
func Pure(n int) int { return n * 2 }

func makesRoot() context.Context {
	return context.Background() // want `context\.Background\(\) in library code severs the caller's cancellation chain`
}

func makesTODO() context.Context {
	return context.TODO() // want `context\.TODO\(\) in library code severs`
}

// Sip blocks but carries a justified annotation on its declaration.
//
//tclint:allow ctxplumb -- golden test for the suppression path
func Sip(ch chan int) int {
	return <-ch
}
