// Package a is the nodeprecated golden package: referencing a function
// or method marked "Deprecated:" is migration debt and must be flagged;
// the deprecated declarations themselves, and calls between deprecated
// helpers awaiting deletion together, are fine.
package a

// Deprecated: use NewWay.
func OldWay() int { return 1 }

// NewWay is the replacement; not deprecated.
func NewWay() int { return 2 }

// Deprecated: use NewWay; forwards to OldWay while both await deletion,
// which is allowed (deprecated-to-deprecated references are not debt).
func OlderWay() int { return OldWay() }

type Widget struct{}

// Deprecated: use Widget.Run.
func (Widget) Go() {}

// Run is the replacement method.
func (Widget) Run() {}

func caller() int {
	return OldWay() // want `sim\.OldWay is deprecated`
}

func methodCaller(w Widget) {
	w.Go() // want `sim\.Widget\.Go is deprecated`
	w.Run()
}

func valueRef() func() int {
	return OldWay // want `sim\.OldWay is deprecated`
}

func fineCaller() int {
	return NewWay()
}

func suppressed() int {
	return OldWay() //tclint:allow nodeprecated -- golden test for the suppression path
}
