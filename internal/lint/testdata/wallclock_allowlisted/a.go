// Package a is analyzed with its package on the wallclock allowlist:
// wall-clock reads are permitted wholesale, so nothing below is
// flagged.
package a

import "time"

func progressStamp() time.Time {
	return time.Now()
}

func progressElapsed(start time.Time) time.Duration {
	return time.Since(start)
}
