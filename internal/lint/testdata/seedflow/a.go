// Package a is the seedflow golden package: every RNG seeding site
// must receive a value traceable to a run seed (a Seed-named config
// field or package variable, arithmetic over one, a draw from a seeded
// generator, or a call summarized as seed-deriving).
package a

import (
	"math/rand"
)

// Config carries the run seed the way the repo's components do.
type Config struct {
	Seed  int64
	Salt  int64
	Width int
}

// counter is a package variable with no seed in its name: opaque.
var counter int64

func constantSeed() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `rand\.NewSource is seeded with a constant`
}

func opaqueSeed() *rand.Rand {
	return rand.New(rand.NewSource(counter)) // want `rand\.NewSource seed argument is not traceable`
}

func fieldSeed(cfg Config) *rand.Rand {
	return rand.New(rand.NewSource(cfg.Seed)) // traceable: Seed field
}

func mixedSeed(cfg Config, i int) *rand.Rand {
	// Mixing the run seed with a salt stays seed-derived.
	return rand.New(rand.NewSource(cfg.Seed*86243 + int64(i)))
}

func localFlow(cfg Config) *rand.Rand {
	seed := cfg.Seed
	seed = seed ^ (seed >> 30)
	return rand.New(rand.NewSource(seed))
}

func drawnSeed(cfg Config) *rand.Rand {
	r := rand.New(rand.NewSource(cfg.Seed))
	// A draw from an already-seeded generator is run-seed-derived.
	return rand.New(rand.NewSource(r.Int63()))
}

func reseed(r *rand.Rand, cfg Config) {
	r.Seed(cfg.Seed + 1)
	r.Seed(7) // want `Rand\.Seed is seeded with a constant`
}

// newGen's seed parameter becomes an obligation on its callers rather
// than a finding here.
func newGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// mix returns a seed-derived value iff either parameter receives one.
func mix(base, salt int64) int64 {
	z := base + salt*0x9E3779B9
	z = (z ^ (z >> 27)) * 0x94D049BB
	return z
}

func callers(cfg Config) {
	newGen(cfg.Seed)          // obligation satisfied by the Seed field
	newGen(mix(cfg.Seed, 11)) // and through the summarized mixer
	newGen(3)                 // want `a\.newGen is seeded with a constant`
	newGen(mix(4, 5))         // want `a\.newGen is seeded with a constant`
	newGen(counter)           // want `a\.newGen seed argument is not traceable`
}

// chain proves obligations compose in-package: chain obligates its own
// caller via newGen's obligation.
func chain(runSeed int64) {
	newGen(runSeed)
}

func chainCaller(cfg Config) {
	chain(cfg.Seed)
	chain(9) // want `a\.chain is seeded with a constant`
}
