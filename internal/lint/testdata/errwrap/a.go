// Package a is the errwrap golden package: sentinels travel through
// fmt.Errorf with %w, and nobody mints a fresh error that shadows an
// existing sentinel's message.
package a

import (
	"errors"
	"fmt"
)

// ErrNoCapacity is this package's local sentinel.
var ErrNoCapacity = errors.New("no capacity")

func wrapWithV(n int) error {
	return fmt.Errorf("adding %d: %v", n, ErrNoCapacity) // want `carries sentinel ErrNoCapacity without %w`
}

func wrapWithS(n int) error {
	return fmt.Errorf("adding %d: %s", n, ErrNoCapacity) // want `carries sentinel ErrNoCapacity without %w`
}

// wrapOK is the sanctioned pattern.
func wrapOK(n int) error {
	return fmt.Errorf("adding %d: %w", n, ErrNoCapacity)
}

// plainErrorfOK: no sentinel involved, %w not required.
func plainErrorfOK(n int) error {
	return fmt.Errorf("bad value %d", n)
}

// localErrOK: a local error variable is not a package-level sentinel.
func localErrOK() error {
	ErrLocal := errors.New("transient")
	return fmt.Errorf("retry: %v", ErrLocal)
}

func duplicateLocal() error {
	return errors.New("no capacity") // want `duplicates sentinel ErrNoCapacity declared in this package`
}

func duplicateKnown() error {
	return errors.New("bad configuration") // want `duplicates errs\.ErrBadConfig`
}

func duplicateKnownSpaced() error {
	return errors.New(" Unknown Thread ") // want `duplicates errs\.ErrUnknownThread`
}

// freshMessageOK: novel messages are fine.
func freshMessageOK() error {
	return errors.New("socket wedged")
}

func suppressed() error {
	return errors.New("thread is running") //tclint:allow errwrap -- golden test for the suppression path
}
