// Package seedlib is the provider side of the cross-package seedflow
// golden pair: its exported functions carry seeding obligations and
// derivation summaries as facts that the consuming package must honor.
package seedlib

import (
	"math/rand"
)

// NewGen seeds a generator; the seed parameter becomes a cross-package
// obligation ({0} in NewGen's SinkGroups fact).
func NewGen(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Mix is a SplitMix64-style derivation: its result is seed-derived iff
// either argument is (ResultParams {0, 1}).
func Mix(base, salt int64) int64 {
	z := uint64(base) + uint64(salt)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	return int64(z >> 1)
}
