// Package a is the snapfields golden package: state providers must
// serialize every non-func field, and containers that snapshot one
// snapshotable component must snapshot all of them.
package a

import (
	"threadcluster/internal/snapbin"
)

// Good serializes everything: no findings.
type Good struct {
	clock uint64
	hits  uint64
}

func (g *Good) SaveState(e *snapbin.Enc) {
	e.U64(g.clock)
	e.U64(g.hits)
}

func (g *Good) RestoreState(d *snapbin.Dec) error {
	g.clock = d.U64()
	g.hits = d.U64()
	return d.Err()
}

// Leaky forgot one field; the func-typed callback is exempt by
// contract (closures are never serialized).
type Leaky struct {
	count    uint64
	dropped  uint64 // want `field dropped of state provider Leaky appears in neither SaveState nor RestoreState`
	onChange func() // func fields never serialize; no finding
}

func (l *Leaky) SaveState(e *snapbin.Enc) {
	e.U64(l.count)
}

func (l *Leaky) RestoreState(d *snapbin.Dec) error {
	l.count = d.U64()
	return d.Err()
}

// CursorState / Cursor exercise the value-state provider shape
// (State() T + Restore(T), the rng.Rand pattern).
type CursorState struct {
	Pos uint64
}

type Cursor struct {
	pos   uint64
	marks uint64 // want `field marks of state provider Cursor appears in neither State nor Restore`
}

func (c *Cursor) State() CursorState {
	return CursorState{Pos: c.pos}
}

func (c *Cursor) Restore(st CursorState) {
	c.pos = st.Pos
}

// Box serializes one snapshotable component but only writes a presence
// flag for the other — its payload never rides along: the section
// drift the cross-component check exists for. The field is mentioned,
// so the in-package check is happy; only the component check sees the
// missing serialization. The plain int field is not snapshotable and
// stays out of it.
type Box struct {
	a   *Good
	b   *Good // want `Box serializes some snapshotable components but never field b`
	gen int
}

func (x *Box) SaveState(e *snapbin.Enc) {
	x.a.SaveState(e)
	e.Bool(x.b != nil)
	e.U64(uint64(x.gen))
}

func (x *Box) RestoreState(d *snapbin.Dec) error {
	if err := x.a.RestoreState(d); err != nil {
		return err
	}
	_ = d.Bool()
	x.gen = int(d.U64())
	return d.Err()
}

// Fleet serializes components through every indirection the repo's
// snapshot code uses — range aliases, index expressions, local
// aliases, method values, the value-state verb — so nothing reports.
type Fleet struct {
	items []*Good
	byID  map[string]*Good
	solo  *Good
	cur   *Cursor
}

func (f *Fleet) SaveState(e *snapbin.Enc) {
	for _, it := range f.items {
		it.SaveState(e)
	}
	for _, k := range []string{"a", "b"} {
		f.byID[k].SaveState(e)
	}
	s := f.solo
	s.SaveState(e)
	st := f.cur.State()
	e.U64(st.Pos)
}

func (f *Fleet) RestoreState(d *snapbin.Dec) error {
	for _, it := range f.items {
		if err := it.RestoreState(d); err != nil {
			return err
		}
	}
	for _, k := range []string{"a", "b"} {
		if err := f.byID[k].RestoreState(d); err != nil {
			return err
		}
	}
	s := f.solo
	if err := s.RestoreState(d); err != nil {
		return err
	}
	f.cur.Restore(CursorState{Pos: d.U64()})
	return d.Err()
}
