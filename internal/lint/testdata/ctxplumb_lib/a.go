// Package a is ctxplumb's library-scope golden package, analyzed as a
// package outside the ctx-first API surface (not root, sweep or core):
// the blocking-signature rule is off, but manufacturing a root context
// is still forbidden.
package a

import "context"

// Drain blocks without a ctx, but this package is not part of the
// ctx-first API surface, so the signature rule does not apply.
func Drain(ch chan int) int {
	return <-ch
}

func makesRoot() context.Context {
	return context.Background() // want `context\.Background\(\) in library code`
}
