// Package snapuse holds containers of snaplib.Comp: whether Comp is
// snapshotable arrives as a fact across the package boundary, not from
// source.
package snapuse

import (
	"threadcluster/internal/snapbin"
	lib "threadcluster/internal/snapfieldslib"
)

// Holder serializes one imported component and forgets the other.
type Holder struct {
	primary *lib.Comp
	shadow  *lib.Comp // want `Holder serializes some snapshotable components but never field shadow`
	label   string
}

func (h *Holder) SaveState(e *snapbin.Enc) {
	h.primary.SaveState(e)
	e.Bool(h.shadow != nil)
	e.Str(h.label)
}

func (h *Holder) RestoreState(d *snapbin.Dec) error {
	if err := h.primary.RestoreState(d); err != nil {
		return err
	}
	_ = d.Bool()
	h.label = d.Str()
	return d.Err()
}

// Pool serializes every imported component (range alias): clean.
type Pool struct {
	comps []*lib.Comp
}

func (p *Pool) SaveState(e *snapbin.Enc) {
	e.U32(uint32(len(p.comps)))
	for _, c := range p.comps {
		c.SaveState(e)
	}
}

func (p *Pool) RestoreState(d *snapbin.Dec) error {
	n := d.Count(8)
	for i := 0; i < n && i < len(p.comps); i++ {
		if err := p.comps[i].RestoreState(d); err != nil {
			return err
		}
	}
	return d.Err()
}
