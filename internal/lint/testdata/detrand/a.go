// Package a is the detrand golden package: global math/rand usage is
// forbidden in library code; seeded *rand.Rand values are the only
// sanctioned randomness.
package a

import (
	"math/rand"
)

func seedGlobal() {
	rand.Seed(42) // want `rand\.Seed reseeds the process-global source`
}

func useGlobal() int {
	n := rand.Intn(10)                 // want `rand\.Intn uses the process-global source`
	f := rand.Float64()                // want `rand\.Float64 uses the process-global source`
	p := rand.Perm(4)                  // want `rand\.Perm uses the process-global source`
	rand.Shuffle(2, func(i, j int) {}) // want `rand\.Shuffle uses the process-global source`
	return n + int(f) + p[0]
}

// seeded is the sanctioned pattern: a private source threaded from a seed.
func seeded(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// methodsOK: methods on a *rand.Rand value named like the globals are fine.
func methodsOK(rng *rand.Rand) float64 {
	return rng.Float64()
}

func suppressed() int {
	//tclint:allow detrand -- golden test for the suppression path
	return rand.Intn(3)
}
