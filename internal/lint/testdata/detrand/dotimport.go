// Dot-imported math/rand: the global funcs arrive as bare identifiers,
// which the selector-based check cannot see; detection goes through
// types.Info.Uses package membership instead.
package a

import (
	. "math/rand" //nolint:staticcheck // the golden case under test
)

func dotImported() int {
	Shuffle(3, func(i, j int) {}) // want `rand\.Shuffle uses the process-global source`
	return Intn(10)               // want `rand\.Intn uses the process-global source`
}

func dotImportedConstructorOK() *Rand {
	// Constructors stay sanctioned under a dot import too: this is how a
	// deterministic generator is built.
	return New(NewSource(1))
}
