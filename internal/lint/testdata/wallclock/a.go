// Package a is the wallclock golden package: reading the wall clock is
// forbidden in simulator code; simulated time is cycle counts.
package a

import "time"

func stamp() time.Time {
	return time.Now() // want `time\.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time\.Since reads the wall clock`
}

func deadline(t time.Time) time.Duration {
	return time.Until(t) // want `time\.Until reads the wall clock`
}

// durationsOK: time.Duration arithmetic and constants never read the clock.
func durationsOK(d time.Duration) time.Duration {
	return d + 5*time.Millisecond
}

// parseOK: calendar formatting without the wall clock is fine.
func parseOK() (time.Time, error) {
	return time.Parse(time.RFC3339, "2007-03-21T00:00:00Z")
}

func annotated() time.Time {
	return time.Now() //tclint:allow wallclock -- golden test for the suppression path
}
