// Package snaplib is the provider side of the cross-package snapfields
// golden pair: Comp's SnapFieldsFact marks it snapshotable for any
// package that embeds it in a container.
package snaplib

import (
	"threadcluster/internal/snapbin"
)

// Comp is a complete state provider.
type Comp struct {
	ticks uint64
}

func (c *Comp) SaveState(e *snapbin.Enc) {
	e.U64(c.ticks)
}

func (c *Comp) RestoreState(d *snapbin.Dec) error {
	c.ticks = d.U64()
	return d.Err()
}
