// Package seeduse consumes seedlib across a package boundary: the
// obligations and summaries arrive as facts, not source.
package seeduse

import (
	lib "threadcluster/internal/seedflowlib"
)

// Opts carries the run seed.
type Opts struct {
	Seed int64
}

var tick int64

func ok(o Opts) {
	lib.NewGen(o.Seed)
	lib.NewGen(lib.Mix(o.Seed, 3))
	lib.NewGen(o.Seed*104729 + 7)
}

func bad() {
	lib.NewGen(1)             // want `seedlib\.NewGen is seeded with a constant`
	lib.NewGen(lib.Mix(5, 6)) // want `seedlib\.NewGen is seeded with a constant`
	lib.NewGen(tick)          // want `seedlib\.NewGen seed argument is not traceable`
}

// wrap re-obligates its own caller through the imported fact: the
// obligation crosses two boundaries before meeting a seed.
func wrap(seed int64) {
	lib.NewGen(seed)
}

func wrapCallers(o Opts) {
	wrap(o.Seed)
	wrap(8) // want `seeduse\.wrap is seeded with a constant`
}
