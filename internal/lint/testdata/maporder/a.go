// Package a is the maporder golden package: ranging over a map with
// order-dependent effects (unsorted appends, output writes) leaks Go's
// randomized iteration order into results.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// unsortedAppend leaks map order into the returned slice.
func unsortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `keys is appended to in map-iteration order and never sorted`
	}
	return keys
}

// sortedAppend is the sanctioned pattern: collect, then sort.
func sortedAppend(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortViaInterfaceOK: sort.Sort with the slice wrapped in an adapter
// still counts as the intervening sort.
func sortViaInterfaceOK(m map[int]bool) []int {
	var ids []int
	for id := range m {
		ids = append(ids, id)
	}
	sort.Sort(sort.IntSlice(ids))
	return ids
}

// printsInside writes output in iteration order.
func printsInside(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside this loop produces non-deterministic output`
	}
}

// buildsString writes through a strings.Builder in iteration order.
func buildsString(m map[string]int) string {
	var sb strings.Builder
	for k := range m {
		sb.WriteString(k) // want `writing through \.WriteString inside this loop`
	}
	return sb.String()
}

// innerSliceOK: a slice that lives and dies inside the loop body cannot
// leak iteration order.
func innerSliceOK(m map[string][]int) int {
	total := 0
	for _, vs := range m {
		var acc []int
		acc = append(acc, vs...)
		total += len(acc)
	}
	return total
}

// aggregationOK: counting and max-finding are order-free.
func aggregationOK(m map[string]int) (int, int) {
	n, max := 0, 0
	for _, v := range m {
		n++
		if v > max {
			max = v
		}
	}
	return n, max
}

// mapToMapOK: building another map is order-free.
func mapToMapOK(m map[int]string) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func suppressed(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) //tclint:allow maporder -- golden test for the suppression path
	}
	return keys
}
