package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"threadcluster/internal/errs"
)

// knownSentinelMessages holds the errors.New texts of internal/errs.
// Export data carries no function bodies, so the initializer strings of
// an imported package are invisible to the type checker; this table is
// the cross-package half of the duplicate-sentinel check. It is built at
// tool init from errs.Sentinels() — the linter links against the real
// package, so a sentinel added to internal/errs is in the table the next
// time tclint compiles, with no manual sync step. (Completeness of
// Sentinels() itself is pinned by internal/errs's AST-parsing test.)
var knownSentinelMessages = func() map[string]string {
	out := make(map[string]string)
	for _, s := range errs.Sentinels() {
		out[strings.ToLower(s.Err.Error())] = "errs." + s.Name
	}
	return out
}()

// KnownSentinelMessages returns a copy of the cross-package sentinel
// message table (lowercased message -> sentinel name); a test pins it
// to the real internal/errs declarations.
func KnownSentinelMessages() map[string]string {
	out := make(map[string]string, len(knownSentinelMessages))
	for k, v := range knownSentinelMessages {
		out[k] = v
	}
	return out
}

// ErrWrap enforces the error-classification contract: sentinel errors
// travel through fmt.Errorf with %w (never %v/%s, which lose the chain
// errors.Is follows), and nobody mints a fresh errors.New whose text
// duplicates an existing sentinel — that creates two errors that look
// identical but never compare equal.
var ErrWrap = &Analyzer{
	Name: "errwrap",
	Doc: "fmt.Errorf carrying an Err* sentinel must wrap it with %w; " +
		"errors.New must not duplicate an existing sentinel's message",
	Appropriate: func(path string) bool {
		// The sentinel definitions themselves live in internal/errs.
		return inModule(path) && path != ModulePath+"/internal/errs"
	},
	Run: runErrWrap,
}

func runErrWrap(pass *Pass) error {
	local := localSentinelMessages(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgNameOf(pass.TypesInfo, sel) {
			case "fmt":
				if sel.Sel.Name == "Errorf" {
					checkErrorf(pass, call)
				}
			case "errors":
				if sel.Sel.Name == "New" {
					checkErrorsNew(pass, call, local)
				}
			}
			return true
		})
	}
	return nil
}

// checkErrorf reports fmt.Errorf calls that pass a sentinel error value
// without a %w verb in the format string.
func checkErrorf(pass *Pass, call *ast.CallExpr) {
	if len(call.Args) < 2 {
		return
	}
	format, ok := stringLiteral(call.Args[0])
	if !ok || strings.Contains(format, "%w") {
		return
	}
	for _, arg := range call.Args[1:] {
		if name := sentinelName(pass.TypesInfo, arg); name != "" {
			pass.Reportf(call.Pos(), "fmt.Errorf carries sentinel %s without %%w, so errors.Is(err, %s) fails on the result; wrap it with %%w", name, name)
			return
		}
	}
}

// checkErrorsNew reports errors.New calls whose message duplicates an
// existing sentinel (from internal/errs, or declared in this package).
func checkErrorsNew(pass *Pass, call *ast.CallExpr, local map[string]sentinelDecl) {
	if len(call.Args) != 1 {
		return
	}
	msg, ok := stringLiteral(call.Args[0])
	if !ok {
		return
	}
	key := strings.ToLower(strings.TrimSpace(msg))
	if decl, ok := local[key]; ok && decl.initPos != call.Pos() {
		pass.Reportf(call.Pos(), "errors.New(%q) duplicates sentinel %s declared in this package; use the sentinel (wrapping with %%w as needed)", msg, decl.name)
		return
	}
	if name, ok := knownSentinelMessages[key]; ok {
		pass.Reportf(call.Pos(), "errors.New(%q) duplicates %s; use the sentinel (wrapping with %%w as needed) so errors.Is classification keeps working", msg, name)
	}
}

type sentinelDecl struct {
	name    string
	initPos token.Pos
}

// localSentinelMessages collects `var ErrX = errors.New("msg")`
// declarations in the package under analysis, keyed by lowercased
// message.
func localSentinelMessages(pass *Pass) map[string]sentinelDecl {
	out := make(map[string]sentinelDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, name := range vs.Names {
					if !strings.HasPrefix(name.Name, "Err") || i >= len(vs.Values) {
						continue
					}
					call, ok := vs.Values[i].(*ast.CallExpr)
					if !ok {
						continue
					}
					sel, ok := call.Fun.(*ast.SelectorExpr)
					if !ok || sel.Sel.Name != "New" || pkgNameOf(pass.TypesInfo, sel) != "errors" || len(call.Args) != 1 {
						continue
					}
					if msg, ok := stringLiteral(call.Args[0]); ok {
						out[strings.ToLower(strings.TrimSpace(msg))] = sentinelDecl{name: name.Name, initPos: call.Pos()}
					}
				}
			}
		}
	}
	return out
}

// sentinelName reports whether e denotes a package-level Err* variable
// of type error, returning a display name ("errs.ErrBadConfig") or "".
func sentinelName(info *types.Info, e ast.Expr) string {
	var obj types.Object
	var display string
	switch e := e.(type) {
	case *ast.Ident:
		obj = info.Uses[e]
		display = e.Name
	case *ast.SelectorExpr:
		if pkg := pkgNameOf(info, e); pkg != "" {
			obj = info.Uses[e.Sel]
			display = pkg[strings.LastIndex(pkg, "/")+1:] + "." + e.Sel.Name
		}
	}
	v, ok := obj.(*types.Var)
	if !ok || !strings.HasPrefix(v.Name(), "Err") {
		return ""
	}
	// Package-level (declared in the package scope) and of type error.
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	if !types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return ""
	}
	return display
}

func stringLiteral(e ast.Expr) (string, bool) {
	lit, ok := e.(*ast.BasicLit)
	if !ok || lit.Kind != token.STRING {
		return "", false
	}
	s, err := strconv.Unquote(lit.Value)
	if err != nil {
		return "", false
	}
	return s, true
}
