package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestDetRand(t *testing.T) {
	linttest.Run(t, lint.DetRand, "testdata/detrand", lint.ModulePath+"/internal/workloads")
}

// TestDetRandScope: the analyzer only covers library code; a cmd/
// package may use ad hoc randomness (none does today, but the scope is
// part of the contract).
func TestDetRandScope(t *testing.T) {
	for path, want := range map[string]bool{
		lint.ModulePath:                          true,
		lint.ModulePath + "/internal/sim":        true,
		lint.ModulePath + "/cmd/tcsim":           false,
		lint.ModulePath + "/examples/quickstart": false,
		"other/module":                           false,
	} {
		if got := lint.DetRand.Appropriate(path); got != want {
			t.Errorf("DetRand.Appropriate(%q) = %v, want %v", path, got, want)
		}
	}
}
