package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestSeedFlow(t *testing.T) {
	linttest.Run(t, lint.SeedFlow, "testdata/seedflow", lint.ModulePath+"/internal/experiments")
}

// TestSeedFlowCrossPackage: the library package's seeding obligations
// and derivation summaries reach the consuming package as facts.
func TestSeedFlowCrossPackage(t *testing.T) {
	linttest.RunWithDeps(t, lint.SeedFlow,
		[]linttest.Dep{{Dir: "testdata/seedflow_lib", AsPath: lint.ModulePath + "/internal/seedflowlib"}},
		"testdata/seedflow_use", lint.ModulePath+"/internal/seedflowuse")
}

func TestSeedFlowScope(t *testing.T) {
	for path, want := range map[string]bool{
		lint.ModulePath:                   true,
		lint.ModulePath + "/internal/rng": true,
		lint.ModulePath + "/cmd/tcsim":    false,
		"other/module":                    false,
	} {
		if got := lint.SeedFlow.Appropriate(path); got != want {
			t.Errorf("SeedFlow.Appropriate(%q) = %v, want %v", path, got, want)
		}
	}
}
