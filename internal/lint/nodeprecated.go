package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"strings"
)

// NoDeprecated forbids in-module references to functions and methods
// whose doc comment carries a "Deprecated:" paragraph. Deprecation in
// this repository is a removal staging area, not a permanent state: an
// entry point is marked, its in-tree callers are migrated the same PR,
// and the next PR deletes it. This analyzer is what keeps stage two
// honest — a deprecated function with surviving in-tree callers fails
// the lint gate instead of fossilizing.
//
// Same-package references are resolved from the package's own ASTs.
// Cross-package references re-parse the defining source file (found via
// the object's position) with comments; when that file is not readable
// — e.g. under the unitchecker protocol, where positions may point into
// export data — the reference is skipped rather than mis-reported.
var NoDeprecated = &Analyzer{
	Name: "nodeprecated",
	Doc: "forbid references to '// Deprecated:' functions and methods inside the module; " +
		"migrate the caller to the replacement named in the deprecation notice",
	Appropriate: inModule,
	Run:         runNoDeprecated,
}

func runNoDeprecated(pass *Pass) error {
	// Deprecated function objects declared in this package.
	local := make(map[types.Object]bool)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !isDeprecatedDoc(fd.Doc) {
				continue
			}
			if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
				local[obj] = true
			}
		}
	}

	// cache memoizes the cross-package lookup per defining object.
	cache := make(map[types.Object]bool)
	deprecated := func(obj types.Object) bool {
		if local[obj] {
			return true
		}
		if obj.Pkg() == nil || !inModule(obj.Pkg().Path()) {
			return false // out-of-module deprecations are not ours to police
		}
		if hit, ok := cache[obj]; ok {
			return hit
		}
		hit := deprecatedAtSource(pass.Fset, obj)
		cache[obj] = hit
		return hit
	}

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := pass.TypesInfo.Uses[id]
			fn, ok := obj.(*types.Func)
			if !ok || !deprecated(fn) {
				return true
			}
			// A function's own body may mention itself (recursion) and a
			// deprecated wrapper may forward to the real implementation;
			// only cross-function references are migration debt.
			if local[fn] && enclosingFuncIsDeprecated(pass, f, id.Pos()) {
				return true
			}
			pass.Reportf(id.Pos(), "%s is deprecated; migrate to the replacement named in its deprecation notice", qualifiedName(fn))
			return true
		})
	}
	return nil
}

// enclosingFuncIsDeprecated reports whether pos sits inside a FuncDecl
// that is itself marked deprecated (deprecated helpers may call each
// other while they await deletion).
func enclosingFuncIsDeprecated(pass *Pass, f *ast.File, pos token.Pos) bool {
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || pos < fd.Pos() || pos > fd.End() {
			continue
		}
		return isDeprecatedDoc(fd.Doc)
	}
	return false
}

// deprecatedAtSource re-parses the file declaring obj and reports
// whether the declaration of that name at the object's line carries a
// deprecation notice. Unreadable or unparsable files (export-data
// positions under the unitchecker protocol) report false.
func deprecatedAtSource(fset *token.FileSet, obj types.Object) bool {
	pos := fset.Position(obj.Pos())
	if pos.Filename == "" || !strings.HasSuffix(pos.Filename, ".go") {
		return false
	}
	src, err := os.ReadFile(pos.Filename)
	if err != nil {
		return false
	}
	ffset := token.NewFileSet()
	f, err := parser.ParseFile(ffset, pos.Filename, src, parser.ParseComments)
	if err != nil {
		return false
	}
	for _, decl := range f.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Name.Name != obj.Name() {
			continue
		}
		if ffset.Position(fd.Name.Pos()).Line != pos.Line {
			continue // same-named method on another receiver
		}
		return isDeprecatedDoc(fd.Doc)
	}
	return false
}

// isDeprecatedDoc implements the godoc convention: a doc-comment
// paragraph beginning "Deprecated:" marks the declaration deprecated.
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// qualifiedName renders a function or method for diagnostics:
// "sim.Machine.RunCycles" rather than the types.Func String() noise.
func qualifiedName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		if path := fn.Pkg().Path(); path != "" {
			name = path[strings.LastIndex(path, "/")+1:] + "." + name
		}
	}
	return name
}
