package lint

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/importer"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// vetConfig is the JSON configuration `go vet` hands a -vettool for each
// package unit. The field set mirrors the unitchecker protocol in
// golang.org/x/tools/go/analysis/unitchecker (which mirrors
// cmd/go/internal/work's vetConfig).
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// PrintVersion implements the `-V=full` handshake `go vet` performs to
// fingerprint the tool for its build cache: the output must have the
// form "name version stuff", and ours hashes the executable so edits to
// tclint invalidate cached vet results.
func PrintVersion(w io.Writer) {
	progname := filepath.Base(os.Args[0])
	id := "devel"
	if exe, err := os.Executable(); err == nil {
		if data, err := os.ReadFile(exe); err == nil {
			id = fmt.Sprintf("%x", sha256.Sum256(data))
		}
	}
	fmt.Fprintf(w, "%s version devel comments-go-here buildID=%s\n", progname, id)
}

// PrintFlags implements the `-flags` handshake: go vet asks the tool
// for its supported flags as a JSON array so it can forward matching
// command-line flags. The shape mirrors x/tools' analysisflags.
func PrintFlags(w io.Writer) {
	type jsonFlag struct {
		Name  string
		Bool  bool
		Usage string
	}
	flags := []jsonFlag{
		{Name: "wallclock.allow", Bool: false, Usage: "comma-separated package path prefixes where wall-clock time is allowed wholesale"},
	}
	data, err := json.Marshal(flags)
	if err != nil {
		panic(err) // static data cannot fail to marshal
	}
	fmt.Fprintln(w, string(data))
}

// Unitchecker runs the analyzers on one vet config file, the per-package
// protocol `go vet -vettool=...` drives. It returns the process exit
// code: 0 clean, 1 tool failure, 2 diagnostics found (the same contract
// as x/tools' unitchecker).
func Unitchecker(cfgFile string, analyzers []*Analyzer, stderr io.Writer) int {
	diags, err := runUnit(cfgFile, analyzers)
	if err != nil {
		fmt.Fprintf(stderr, "tclint: %v\n", err)
		return 1
	}
	for _, d := range diags {
		fmt.Fprintf(stderr, "%s: %s\n", d.Pos, d.Message)
	}
	if len(diags) > 0 {
		return 2
	}
	return 0
}

func runUnit(cfgFile string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}

	// The vetx facts file must exist even for packages we export no
	// facts from: go vet feeds it to this package's dependents. Only
	// module packages carry facts — the determinism contracts do not
	// attach facts to the standard library or to vendored dependencies —
	// so everything else (which go vet visits in VetxOnly mode purely to
	// materialize vetx files) writes an empty file without paying for a
	// type-check.
	if !inModule(cfg.ImportPath) {
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	// Seed the store with the dependencies' facts. Each dependency's
	// vetx already contains its own transitive imports' facts (see the
	// union write below), so direct-import vetx files suffice no matter
	// which subset go vet chose to hand us.
	facts := NewFacts()
	for _, path := range sortedKeys(cfg.PackageVetx) {
		data, err := os.ReadFile(cfg.PackageVetx[path])
		if err != nil {
			return nil, fmt.Errorf("reading facts of %s: %w", path, err)
		}
		if err := facts.DecodeFacts(data); err != nil {
			return nil, fmt.Errorf("decoding facts of %s: %w", path, err)
		}
	}

	fset := token.NewFileSet()
	compilerImp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no package file for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return compilerImp.Import(importPath)
	})

	// go vet hands GoFiles including any _test.go files when vetting
	// test packages; the determinism contracts only govern shipping
	// code, so tests are filtered here to match the standalone driver.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	writeVetx := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		return os.WriteFile(cfg.VetxOutput, facts.Encode(), 0o666)
	}
	if len(files) == 0 {
		// Nothing to analyze (a test-only package unit): pass the
		// imported facts through for dependents.
		return nil, writeVetx()
	}
	pkg, err := checkPackage(fset, imp, cfg.ImportPath, cfg.Dir, files)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, writeVetx()
		}
		return nil, err
	}
	// VetxOnly means go vet wants this unit's facts for a dependent but
	// is not reporting on the package itself; the analyzers still run —
	// fact computation is the analysis — and only the diagnostics are
	// discarded.
	diags, err := RunPackageFacts(pkg, analyzers, facts)
	if err != nil {
		return nil, err
	}
	if err := writeVetx(); err != nil {
		return nil, err
	}
	if cfg.VetxOnly {
		return nil, nil
	}
	return diags, nil
}

// sortedKeys returns m's keys sorted, for deterministic iteration.
func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }
