package lint

import (
	"fmt"
	"go/types"
	"reflect"
	"sort"

	"threadcluster/internal/snapbin"
)

// This file is the facts layer: the mechanism that turns the suite from
// six intra-package checkers into an interprocedural one. An analyzer
// running on package P can attach a Fact to one of P's package-level
// objects (a function, method, type or variable); when the suite later
// analyzes a package that imports P, the same analyzer can look that
// fact up by object and act on it. Facts are how seedflow knows that
// rng.New's argument is an RNG seed while analyzing a package three
// import hops away, and how snapfields knows that cache.Hierarchy is a
// snapshotable component while analyzing sim.
//
// Two transports exist, one per driver, carrying byte-identical
// payloads:
//
//   - The standalone driver (tclint ./...) analyzes the whole module in
//     dependency order and threads a single in-memory *Facts through
//     every package.
//   - The unitchecker driver (go vet -vettool=) decodes the vetx files
//     go vet hands it for the package's dependencies, and encodes the
//     union of imported and newly exported facts to VetxOutput for its
//     dependents. go vet caches vetx files, so the encoding must be
//     deterministic: entries are sorted by (package, object, fact type)
//     and every payload is a canonical snapbin encoding — no gob, no
//     map-order hazards.
//
// Object naming deliberately avoids go/types object identity (the two
// drivers materialize different types.Object graphs for the same
// source): a fact is keyed by the object's package path plus a stable
// in-package key — "F" for a package-level function/var/type, "T.M" for
// a method. Anything else (locals, struct fields, interface methods) is
// not a fact target; analyzers encode such detail inside the fact
// payload instead (snapfields lists field names in its payload, for
// example).

// A Fact is one deterministic, serializable statement an analyzer makes
// about a package-level object. Implementations must be pointer types;
// the payload must round-trip exactly through EncodeFact/DecodeFact.
type Fact interface {
	// AFact marks the type as a fact (and pins the intended pointer
	// receiver shape).
	AFact()
	// EncodeFact appends the fact's canonical encoding. Implementations
	// must emit any set- or map-shaped payload in sorted order.
	EncodeFact(e *snapbin.Enc)
	// DecodeFact overwrites the fact from an encoding produced by
	// EncodeFact.
	DecodeFact(d *snapbin.Dec) error
}

// factName returns the registry name of a fact's concrete type.
func factName(f Fact) string {
	t := reflect.TypeOf(f)
	if t.Kind() != reflect.Pointer {
		panic(fmt.Sprintf("lint: fact %T must be a pointer type", f))
	}
	return t.Elem().Name()
}

// ObjectKey returns the stable in-package key facts are filed under, or
// ok=false for objects facts cannot attach to (locals, fields,
// interface methods).
func ObjectKey(obj types.Object) (string, bool) {
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	if fn, isFunc := obj.(*types.Func); isFunc {
		sig := fn.Type().(*types.Signature)
		if recv := sig.Recv(); recv != nil {
			named, ptrOK := namedOfRecv(recv.Type())
			if !ptrOK {
				return "", false
			}
			// A named interface's methods carry it as receiver too, but
			// they have no single implementation to attach facts to.
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				return "", false
			}
			return named.Obj().Name() + "." + fn.Name(), true
		}
	}
	if obj.Parent() != obj.Pkg().Scope() {
		return "", false
	}
	return obj.Name(), true
}

// namedOfRecv unwraps a method receiver type (T or *T) to its named
// type. Interface receivers have no stable key and report false.
func namedOfRecv(t types.Type) (*types.Named, bool) {
	if p, isPtr := t.(*types.Pointer); isPtr {
		t = p.Elem()
	}
	n, isNamed := t.(*types.Named)
	return n, isNamed
}

// factKey identifies one fact instance globally.
type factKey struct {
	pkg    string // package import path
	object string // ObjectKey within the package
	typ    string // factName of the concrete fact type
}

// Facts is a store of encoded facts. One store serves a whole
// standalone run; the unitchecker builds one per package unit from the
// dependency vetx files. Payloads are kept encoded so both drivers see
// exactly the bytes that would cross the vetx boundary.
type Facts struct {
	m map[factKey][]byte
}

// NewFacts returns an empty store.
func NewFacts() *Facts { return &Facts{m: make(map[factKey][]byte)} }

// Len returns the number of facts in the store.
func (f *Facts) Len() int { return len(f.m) }

func (f *Facts) put(key factKey, payload []byte) {
	f.m[key] = payload
}

func (f *Facts) get(key factKey) ([]byte, bool) {
	b, ok := f.m[key]
	return b, ok
}

// Merge copies every fact in src into f.
func (f *Facts) Merge(src *Facts) {
	for k, v := range src.m {
		f.m[k] = v
	}
}

// factsMagic opens every encoded facts blob, versioned separately from
// the machine-snapshot encoding it borrows its style from.
const factsMagic = "tclint-facts"

// factsVersion is the current facts encoding version. A vetx file
// written by a different tclint build is rejected — go vet fingerprints
// the tool binary (PrintVersion) and invalidates cached vetx on any
// change, so a version mismatch only ever means foreign bytes.
const factsVersion = 1

// Encode renders the store in canonical form: magic, version, and every
// fact sorted by (package, object, fact type).
func (f *Facts) Encode() []byte {
	keys := make([]factKey, 0, len(f.m))
	for k := range f.m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.pkg != b.pkg {
			return a.pkg < b.pkg
		}
		if a.object != b.object {
			return a.object < b.object
		}
		return a.typ < b.typ
	})
	e := &snapbin.Enc{}
	e.Str(factsMagic)
	e.U16(factsVersion)
	e.U32(uint32(len(keys)))
	for _, k := range keys {
		e.Str(k.pkg)
		e.Str(k.object)
		e.Str(k.typ)
		e.Blob(f.m[k])
	}
	return e.Bytes()
}

// DecodeFacts parses an Encode blob and merges its facts into the
// store. Empty input is an empty store (the pre-facts suite wrote
// zero-byte vetx files; go vet may still hold cached ones).
func (f *Facts) DecodeFacts(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	d := snapbin.NewDec(data)
	if magic := d.Str(); d.Err() == nil && magic != factsMagic {
		return fmt.Errorf("lint: facts blob has magic %q: %w", magic, snapbin.ErrCorrupt)
	}
	if v := d.U16(); d.Err() == nil && v != factsVersion {
		return fmt.Errorf("lint: facts blob version %d, this build reads %d: %w", v, factsVersion, snapbin.ErrCorrupt)
	}
	n := d.Count(4)
	for i := 0; i < n && d.Err() == nil; i++ {
		key := factKey{pkg: d.Str(), object: d.Str(), typ: d.Str()}
		payload := d.Blob()
		if d.Err() == nil {
			// Copy: Blob aliases the input buffer.
			f.m[key] = append([]byte(nil), payload...)
		}
	}
	return d.Close()
}

// ExportObjectFact attaches fact to obj, which must belong to the
// package under analysis. Facts on objects outside the current package
// would be invisible to the unitchecker driver (each unit writes only
// its own vetx), so exporting one is a programming error.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if obj == nil || obj.Pkg() == nil || obj.Pkg() != p.Pkg {
		panic(fmt.Sprintf("lint: %s: ExportObjectFact on object %v outside package %s", p.Analyzer.Name, obj, p.PkgPath))
	}
	key, ok := ObjectKey(obj)
	if !ok {
		panic(fmt.Sprintf("lint: %s: object %v has no stable fact key", p.Analyzer.Name, obj))
	}
	e := &snapbin.Enc{}
	fact.EncodeFact(e)
	p.facts.put(factKey{pkg: p.PkgPath, object: key, typ: factName(fact)}, e.Bytes())
}

// ImportObjectFact decodes the fact of fact's concrete type attached to
// obj — by this or any previously analyzed package — into fact,
// reporting whether one existed. obj may come from any package.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	key, ok := ObjectKey(obj)
	if !ok {
		return false
	}
	payload, found := p.facts.get(factKey{pkg: obj.Pkg().Path(), object: key, typ: factName(fact)})
	if !found {
		return false
	}
	d := snapbin.NewDec(payload)
	if err := fact.DecodeFact(d); err != nil {
		// A payload this build's encoder produced always decodes; foreign
		// bytes were rejected wholesale by DecodeFacts' version check.
		panic(fmt.Sprintf("lint: fact %s on %s.%s does not decode: %v", factName(fact), obj.Pkg().Path(), key, err))
	}
	if err := d.Close(); err != nil {
		panic(fmt.Sprintf("lint: fact %s on %s.%s has trailing bytes: %v", factName(fact), obj.Pkg().Path(), key, err))
	}
	return true
}
