package lint

import (
	"go/ast"
	"strings"
)

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that read or reseed the shared global source. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) and types are fine: they
// are exactly how a deterministic, seed-threaded *rand.Rand is built.
var globalRandFuncs = map[string]bool{
	// shared by v1 and v2
	"Int": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true,
	// v1 only
	"Seed": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Read": true,
	// v2 only
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// DetRand forbids the global math/rand source in library code. Every
// simulation component derives its randomness from a seeded *rand.Rand
// threaded down from the engine or sweep seed (see DESIGN.md §6); the
// global source is shared mutable state that makes two runs with the
// same seed diverge as soon as goroutine interleaving differs.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid the global math/rand source (top-level funcs and rand.Seed) in library code; " +
		"randomness must come from a seeded *rand.Rand threaded from the engine/sweep seed",
	Appropriate: inLibrary,
	Run:         runDetRand,
}

func runDetRand(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			path := pkgNameOf(pass.TypesInfo, sel)
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			name := sel.Sel.Name
			if !globalRandFuncs[name] {
				return true
			}
			short := path[strings.LastIndex(path, "/")+1:]
			if short == "v2" {
				short = "rand/v2"
			}
			if name == "Seed" {
				pass.Reportf(sel.Pos(), "rand.Seed reseeds the process-global source; seed a private rand.New(rand.NewSource(seed)) instead")
			} else {
				pass.Reportf(sel.Pos(), "%s.%s uses the process-global source; use a seeded *rand.Rand threaded from the engine/sweep seed", short, name)
			}
			return true
		})
	}
	return nil
}
