package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// globalRandFuncs are the math/rand (and math/rand/v2) package-level
// functions that read or reseed the shared global source. Constructors
// (New, NewSource, NewZipf, NewPCG, NewChaCha8) and types are fine: they
// are exactly how a deterministic, seed-threaded *rand.Rand is built.
var globalRandFuncs = map[string]bool{
	// shared by v1 and v2
	"Int": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true,
	"ExpFloat64": true, "NormFloat64": true,
	"Perm": true, "Shuffle": true,
	// v1 only
	"Seed": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Read": true,
	// v2 only
	"N": true, "IntN": true, "Int32": true, "Int32N": true,
	"Int64": true, "Int64N": true, "Uint": true, "UintN": true,
	"Uint32N": true, "Uint64N": true,
}

// DetRand forbids the global math/rand source in library code. Every
// simulation component derives its randomness from a seeded *rand.Rand
// threaded down from the engine or sweep seed (see DESIGN.md §6); the
// global source is shared mutable state that makes two runs with the
// same seed diverge as soon as goroutine interleaving differs.
var DetRand = &Analyzer{
	Name: "detrand",
	Doc: "forbid the global math/rand source (top-level funcs and rand.Seed) in library code; " +
		"randomness must come from a seeded *rand.Rand threaded from the engine/sweep seed",
	Appropriate: inLibrary,
	Run:         runDetRand,
}

func runDetRand(pass *Pass) error {
	report := func(pos ast.Node, path, name string) {
		short := path[strings.LastIndex(path, "/")+1:]
		if short == "v2" {
			short = "rand/v2"
		}
		if name == "Seed" {
			pass.Reportf(pos.Pos(), "rand.Seed reseeds the process-global source; seed a private rand.New(rand.NewSource(seed)) instead")
		} else {
			pass.Reportf(pos.Pos(), "%s.%s uses the process-global source; use a seeded *rand.Rand threaded from the engine/sweep seed", short, name)
		}
	}
	for _, f := range pass.Files {
		// Selector uses (rand.Intn) report on the qualified expression;
		// the selector's Sel idents are excluded from the bare-ident walk
		// below so nothing reports twice.
		inSelector := make(map[*ast.Ident]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if sel, ok := n.(*ast.SelectorExpr); ok {
				inSelector[sel.Sel] = true
			}
			return true
		})
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				path := pkgNameOf(pass.TypesInfo, n)
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if globalRandFuncs[n.Sel.Name] {
					report(n, path, n.Sel.Name)
				}
			case *ast.Ident:
				// A dot import (import . "math/rand") makes the global
				// funcs reachable as bare idents, which no selector-based
				// check sees; resolve the use to its defining package.
				if inSelector[n] {
					return true
				}
				fn, ok := pass.TypesInfo.Uses[n].(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				path := fn.Pkg().Path()
				if path != "math/rand" && path != "math/rand/v2" {
					return true
				}
				if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
					return true // methods are fine; only package-level funcs hit the global source
				}
				if globalRandFuncs[fn.Name()] {
					report(n, path, fn.Name())
				}
			}
			return true
		})
	}
	return nil
}
