package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"

	"threadcluster/internal/snapbin"
)

// SeedFlow is detrand's interprocedural counterpart. detrand bans the
// global math/rand source; seedflow proves the private sources are no
// better disguised: every library-code expression that seeds an RNG —
// rand.NewSource, rand/v2.NewPCG, Source.Seed, and any function whose
// summary says a parameter flows into one of those — must receive a
// value provenance-traceable to a run seed. Traceable means: a seed-
// named config field or package variable (the repo's convention for the
// run seed), a value derived from one by integer arithmetic (the
// cfg.Seed*prime+i and SplitMix64 mixing patterns), a draw from an
// already-seeded *rand.Rand or *rng.Rand, or a call whose SeedSummary
// fact vouches for the result. A parameter is NOT traceable by itself:
// it turns into an obligation on the caller, exported as a fact, so the
// proof crosses package boundaries — rng.New's seed parameter obligates
// sched.New's, which obligates sim.NewMachine's caller, until a Seed
// field or a constant is reached. Constants seeding library RNGs are
// exactly the bug class the N+M differential harnesses cannot see.
var SeedFlow = &Analyzer{
	Name: "seedflow",
	Doc: "require every RNG seed expression in library code to be provenance-traceable to a run seed " +
		"(a Seed config field, sweep.DeriveSeed-style mixing, or a seeded generator), " +
		"propagating the obligation across package boundaries via facts",
	Appropriate: inLibrary,
	Run:         runSeedFlow,
}

// SeedSummaryFact is seedflow's per-function fact. ResultTraceable
// means every return path yields a run-seed-derived integer.
// ResultParams means the result is seed-derived iff at least one of the
// listed parameters receives a seed-derived argument (any-semantics:
// mixing one trusted seed with untrusted salt, DeriveSeed(base, i),
// still yields a derived seed). SinkGroups are the function's
// obligations: for each group, at least one of the listed parameters
// must receive a seed-derived argument, because inside the function the
// group's members meet an RNG seeding site.
type SeedSummaryFact struct {
	ResultTraceable bool
	ResultParams    []uint32
	SinkGroups      [][]uint32
}

func (*SeedSummaryFact) AFact() {}

// EncodeFact renders the summary canonically: ResultParams sorted,
// each sink group sorted, groups in lexicographic order.
func (f *SeedSummaryFact) EncodeFact(e *snapbin.Enc) {
	e.Bool(f.ResultTraceable)
	e.U32(uint32(len(f.ResultParams)))
	for _, p := range f.ResultParams {
		e.U32(p)
	}
	e.U32(uint32(len(f.SinkGroups)))
	for _, g := range f.SinkGroups {
		e.U32(uint32(len(g)))
		for _, p := range g {
			e.U32(p)
		}
	}
}

func (f *SeedSummaryFact) DecodeFact(d *snapbin.Dec) error {
	f.ResultTraceable = d.Bool()
	f.ResultParams = nil
	n := d.Count(4)
	for i := 0; i < n && d.Err() == nil; i++ {
		f.ResultParams = append(f.ResultParams, d.U32())
	}
	f.SinkGroups = nil
	n = d.Count(4)
	for i := 0; i < n && d.Err() == nil; i++ {
		var g []uint32
		k := d.Count(4)
		for j := 0; j < k && d.Err() == nil; j++ {
			g = append(g, d.U32())
		}
		f.SinkGroups = append(f.SinkGroups, g)
	}
	return d.Err()
}

func (f *SeedSummaryFact) trivial() bool {
	return !f.ResultTraceable && len(f.ResultParams) == 0 && len(f.SinkGroups) == 0
}

func (f *SeedSummaryFact) encodeBytes() []byte {
	e := &snapbin.Enc{}
	f.EncodeFact(e)
	return e.Bytes()
}

// seedFixpointMax bounds the in-package summary iteration. The
// traceability lattice is finite and classification is monotone, so the
// fixpoint converges long before this; the cap only guards pathology.
const seedFixpointMax = 20

// seedCls classifies one integer expression's seed provenance.
// traceable: derived from a run seed. params: derived iff any listed
// parameter of the enclosing named function is. isConst: built from
// constants only — at a seeding site that is the "hard-coded seed"
// finding rather than the "cannot trace" one. None set: opaque.
type seedCls struct {
	traceable bool
	isConst   bool
	params    map[int]bool
}

// seedCombine merges the classifications of two subexpressions of one
// arithmetic expression: a mix is traceable if either input is
// (seed*prime + salt stays seed-derived), constant only if both are.
func seedCombine(a, b seedCls) seedCls {
	out := seedCls{
		traceable: a.traceable || b.traceable,
		isConst:   a.isConst && b.isConst,
	}
	for p := range a.params {
		out = out.withParam(p)
	}
	for p := range b.params {
		out = out.withParam(p)
	}
	return out
}

// seedAccum merges classifications of distinct assignments to one
// variable: any branch assigning a traceable value makes later reads
// potentially traceable, so everything unions (monotone, which the
// fixpoint needs).
func seedAccum(a, b seedCls) seedCls {
	out := seedCombine(a, b)
	out.isConst = a.isConst || b.isConst
	return out
}

func (c seedCls) withParam(p int) seedCls {
	if c.params == nil {
		c.params = make(map[int]bool)
	}
	c.params[p] = true
	return c
}

func (c seedCls) equal(o seedCls) bool {
	if c.traceable != o.traceable || c.isConst != o.isConst || len(c.params) != len(o.params) {
		return false
	}
	for p := range c.params {
		if !o.params[p] {
			return false
		}
	}
	return true
}

// isSeedName reports whether a field or package-variable name marks a
// run-seed carrier by the repo's naming convention (Seed, BaseSeed,
// seedOffset, ...).
func isSeedName(name string) bool {
	return strings.Contains(strings.ToLower(name), "seed")
}

type seedFunc struct {
	obj  *types.Func
	decl *ast.FuncDecl
}

func runSeedFlow(pass *Pass) error {
	var fns []seedFunc
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fns = append(fns, seedFunc{obj: obj, decl: fd})
		}
	}

	summaries := make(map[*types.Func]*SeedSummaryFact)
	for i := 0; i < seedFixpointMax; i++ {
		changed := false
		for _, fn := range fns {
			s := seedAnalyzeFunc(pass, fn, summaries, false)
			if prev := summaries[fn.obj]; prev == nil || string(prev.encodeBytes()) != string(s.encodeBytes()) {
				summaries[fn.obj] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Reporting pass: summaries are stable, so a sink argument that is
	// neither traceable nor parameter-dependent now is a finding.
	for _, fn := range fns {
		seedAnalyzeFunc(pass, fn, summaries, true)
	}

	for _, fn := range fns {
		s := summaries[fn.obj]
		if s == nil || s.trivial() {
			continue
		}
		if _, ok := ObjectKey(fn.obj); !ok {
			continue
		}
		pass.ExportObjectFact(fn.obj, s)
	}
	return nil
}

// seedCtx is the per-function classification context.
type seedCtx struct {
	pass      *Pass
	summaries map[*types.Func]*SeedSummaryFact
	params    map[*types.Var]int
	closure   map[*types.Var]bool
	locals    map[*types.Var]seedCls
}

// seedAnalyzeFunc computes fn's summary, and when report is set also
// emits diagnostics for seeding sites whose argument is provably
// constant or untraceable.
func seedAnalyzeFunc(pass *Pass, fn seedFunc, summaries map[*types.Func]*SeedSummaryFact, report bool) *SeedSummaryFact {
	sig := fn.obj.Type().(*types.Signature)
	ctx := &seedCtx{
		pass:      pass,
		summaries: summaries,
		params:    make(map[*types.Var]int),
		closure:   make(map[*types.Var]bool),
		locals:    make(map[*types.Var]seedCls),
	}
	for i := 0; i < sig.Params().Len(); i++ {
		ctx.params[sig.Params().At(i)] = i
	}
	// Closure parameters are trusted: the repo's callback contracts
	// (sweep.Task, experiment runners) pass already-derived seeds into
	// closures, and the closure body has no caller to push an
	// obligation onto.
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		fl, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		for _, field := range fl.Type.Params.List {
			for _, name := range field.Names {
				if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
					ctx.closure[v] = true
				}
			}
		}
		return true
	})

	// Local dataflow to fixpoint: assignment order in source need not
	// match def-use order (loops), and classify is monotone, so iterate.
	for i := 0; i < seedFixpointMax; i++ {
		if !ctx.propagateLocals(fn.decl.Body) {
			break
		}
	}

	sum := &SeedSummaryFact{}
	groups := make(map[string][]uint32)
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		ctx.checkSink(call, sum, groups, report)
		return true
	})
	for _, key := range sortedGroupKeys(groups) {
		sum.SinkGroups = append(sum.SinkGroups, groups[key])
	}

	ctx.summarizeResult(fn, sig, sum)
	return sum
}

// propagateLocals records the classification of every local variable
// assignment, returning whether anything changed.
func (c *seedCtx) propagateLocals(body *ast.BlockStmt) bool {
	changed := false
	record := func(id *ast.Ident, rhs ast.Expr) {
		obj := c.pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = c.pass.TypesInfo.Uses[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.Parent() == nil || v.Parent() == c.pass.Pkg.Scope() {
			return // not a local (field, package var, blank)
		}
		if _, isParam := c.params[v]; isParam || c.closure[v] {
			return // reassigned parameters keep their parameter identity
		}
		nc := seedAccum(c.locals[v], c.classify(rhs))
		if !nc.equal(c.locals[v]) {
			c.locals[v] = nc
			changed = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true // tuple assignment from a call: opaque
			}
			for i, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					record(id, n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if i < len(n.Values) {
					record(name, n.Values[i])
				}
			}
		}
		return true
	})
	return changed
}

// classify determines one expression's seed provenance.
func (c *seedCtx) classify(e ast.Expr) seedCls {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return c.classify(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB || e.Op == token.XOR {
			return c.classify(e.X)
		}
	case *ast.BinaryExpr:
		return seedCombine(c.classify(e.X), c.classify(e.Y))
	case *ast.BasicLit:
		return seedCls{isConst: true}
	case *ast.Ident:
		return c.classifyObj(c.pass.TypesInfo.Uses[e])
	case *ast.SelectorExpr:
		if sel := c.pass.TypesInfo.Selections[e]; sel != nil {
			if sel.Kind() == types.FieldVal && isSeedName(e.Sel.Name) {
				return seedCls{traceable: true}
			}
			return seedCls{}
		}
		return c.classifyObj(c.pass.TypesInfo.Uses[e.Sel]) // qualified pkg.X
	case *ast.CallExpr:
		return c.classifyCall(e)
	}
	return seedCls{}
}

func (c *seedCtx) classifyObj(obj types.Object) seedCls {
	switch obj := obj.(type) {
	case *types.Const:
		return seedCls{isConst: true}
	case *types.Var:
		if i, ok := c.params[obj]; ok {
			return seedCls{}.withParam(i)
		}
		if c.closure[obj] {
			return seedCls{traceable: true}
		}
		if cl, ok := c.locals[obj]; ok {
			return cl
		}
		if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() && isSeedName(obj.Name()) {
			return seedCls{traceable: true}
		}
	}
	return seedCls{}
}

func (c *seedCtx) classifyCall(call *ast.CallExpr) seedCls {
	if tv, ok := c.pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return c.classify(call.Args[0]) // conversion, e.g. int64(x)
		}
		return seedCls{}
	}
	callee := calleeFuncOf(c.pass.TypesInfo, call.Fun)
	if callee == nil {
		return seedCls{}
	}
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && recvIsSeededRand(sig.Recv().Type()) {
		// A draw from an already-seeded generator is run-seed-derived
		// by construction (the generator's own seeding was checked at
		// its seeding site).
		return seedCls{traceable: true}
	}
	if s := c.summaryOf(callee); s != nil {
		if s.ResultTraceable {
			return seedCls{traceable: true}
		}
		if len(s.ResultParams) > 0 {
			cls := seedCls{isConst: true}
			any := false
			for _, pi := range s.ResultParams {
				if int(pi) >= len(call.Args) {
					continue
				}
				any = true
				cls = seedCombine(cls, c.classify(call.Args[pi]))
			}
			if any {
				return cls
			}
		}
	}
	return seedCls{}
}

// checkSink inspects one call for seeding obligations. Groups whose
// arguments depend on the enclosing function's parameters become that
// function's own SinkGroups; provably constant or opaque arguments are
// findings (reported only on the final pass).
func (c *seedCtx) checkSink(call *ast.CallExpr, sum *SeedSummaryFact, groups map[string][]uint32, report bool) {
	callee := calleeFuncOf(c.pass.TypesInfo, call.Fun)
	if callee == nil {
		return
	}
	for _, g := range c.sinkGroupsOf(callee) {
		cls := seedCls{isConst: true}
		any := false
		for _, pi := range g {
			if int(pi) >= len(call.Args) {
				continue
			}
			any = true
			cls = seedCombine(cls, c.classify(call.Args[pi]))
		}
		if !any || cls.traceable {
			continue
		}
		if len(cls.params) > 0 {
			addSinkGroup(groups, cls.params)
			continue
		}
		if !report {
			continue
		}
		pos := call.Pos()
		if int(g[0]) < len(call.Args) {
			pos = call.Args[g[0]].Pos()
		}
		if cls.isConst {
			c.pass.Reportf(pos, "%s is seeded with a constant; derive the seed from the run seed (a Seed config field or sweep.DeriveSeed)", seedCalleeName(callee))
		} else {
			c.pass.Reportf(pos, "%s seed argument is not traceable to a run seed; thread it from the engine/sweep seed", seedCalleeName(callee))
		}
	}
}

// sinkGroupsOf returns the parameter groups of fn that must receive a
// run-seed-derived argument: the built-in math/rand seeding entry
// points, plus whatever fn's own summary obligates.
func (c *seedCtx) sinkGroupsOf(fn *types.Func) [][]uint32 {
	sig, _ := fn.Type().(*types.Signature)
	if pkg := fn.Pkg(); pkg != nil && sig != nil {
		switch pkg.Path() {
		case "math/rand":
			if fn.Name() == "NewSource" && sig.Recv() == nil {
				return [][]uint32{{0}}
			}
			// Source.Seed / Rand.Seed method: reseeding a private
			// source. (The package-level rand.Seed is detrand's.)
			if fn.Name() == "Seed" && sig.Recv() != nil {
				return [][]uint32{{0}}
			}
		case "math/rand/v2":
			if fn.Name() == "NewPCG" && sig.Recv() == nil {
				return [][]uint32{{0}, {1}}
			}
		}
	}
	if s := c.summaryOf(fn); s != nil {
		return s.SinkGroups
	}
	return nil
}

func (c *seedCtx) summaryOf(fn *types.Func) *SeedSummaryFact {
	if s, ok := c.summaries[fn]; ok {
		return s
	}
	if fn.Pkg() != nil && fn.Pkg() != c.pass.Pkg {
		var f SeedSummaryFact
		if c.pass.ImportObjectFact(fn, &f) {
			return &f
		}
	}
	return nil
}

// summarizeResult fills in ResultTraceable/ResultParams from the named
// function's return statements (closures' returns are their own).
func (c *seedCtx) summarizeResult(fn seedFunc, sig *types.Signature, sum *SeedSummaryFact) {
	var intPos []int
	for i := 0; i < sig.Results().Len(); i++ {
		if b, ok := sig.Results().At(i).Type().Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			intPos = append(intPos, i)
		}
	}
	if len(intPos) == 0 {
		return
	}
	var returns []*ast.ReturnStmt
	ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if r, ok := n.(*ast.ReturnStmt); ok {
			returns = append(returns, r)
		}
		return true
	})
	if len(returns) == 0 {
		return
	}
	allTraceable := true
	pset := make(map[int]bool)
	for _, r := range returns {
		if len(r.Results) != sig.Results().Len() {
			return // bare return or tuple-forwarding: opaque
		}
		rc := seedCls{isConst: true}
		for _, pi := range intPos {
			rc = seedCombine(rc, c.classify(r.Results[pi]))
		}
		if rc.traceable {
			continue
		}
		if len(rc.params) == 0 {
			return // one opaque/constant return path spoils the result
		}
		allTraceable = false
		for p := range rc.params {
			pset[p] = true
		}
	}
	if allTraceable {
		sum.ResultTraceable = true
		return
	}
	sum.ResultParams = sortedU32(pset)
}

// recvIsSeededRand reports whether t is math/rand.Rand or the module's
// rng.Rand (possibly behind a pointer) — generators whose draws are
// run-seed-derived once their own seeding checks out.
func recvIsSeededRand(t types.Type) bool {
	named, ok := namedOfRecv(t)
	if !ok || named.Obj().Pkg() == nil || named.Obj().Name() != "Rand" {
		return false
	}
	path := named.Obj().Pkg().Path()
	return path == "math/rand" || path == ModulePath+"/internal/rng"
}

// calleeFuncOf resolves a call's callee to its *types.Func, or nil for
// indirect calls, builtins and conversions.
func calleeFuncOf(info *types.Info, fun ast.Expr) *types.Func {
	switch f := ast.Unparen(fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[f].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[f.Sel].(*types.Func)
		return fn
	}
	return nil
}

func seedCalleeName(fn *types.Func) string {
	name := fn.Name()
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if named, ok := namedOfRecv(sig.Recv().Type()); ok {
			name = named.Obj().Name() + "." + name
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + name
	}
	return name
}

func addSinkGroup(groups map[string][]uint32, params map[int]bool) {
	g := sortedU32(params)
	groups[fmt.Sprint(g)] = g
}

func sortedU32(set map[int]bool) []uint32 {
	out := make([]uint32, 0, len(set))
	for p := range set {
		out = append(out, uint32(p))
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func sortedGroupKeys(groups map[string][]uint32) []string {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
