package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder flags `range` over a map whose loop body has order-dependent
// effects: appending to a slice declared outside the loop (unless the
// slice is sorted afterwards in the same block), writing output
// (fmt.Print*/Fprint*, Write/WriteString/WriteByte/WriteRune methods),
// or feeding the metrics registry. Go randomizes map iteration order,
// so each of these makes two identical runs produce different bytes —
// the exact bug class that would break Snapshot/Delta byte-stability
// and the sweep runner's worker-count invariance. Building another map,
// counting, summing or finding a max inside the loop is order-free and
// is not flagged.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flag map iteration with order-dependent effects (appends without a following sort, " +
		"output writes, metrics feeds); collect keys and sort, or iterate a sorted slice",
	Appropriate: inModule,
	Run:         runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, f := range pass.Files {
		inspectStmtLists(f, func(list []ast.Stmt) {
			for i, stmt := range list {
				rs, ok := stmt.(*ast.RangeStmt)
				if !ok {
					continue
				}
				tv, ok := pass.TypesInfo.Types[rs.X]
				if !ok {
					continue
				}
				if _, ok := tv.Type.Underlying().(*types.Map); !ok {
					continue
				}
				checkMapRange(pass, rs, list[i+1:])
			}
		})
	}
	return nil
}

// inspectStmtLists calls fn for every statement list in the file: block
// bodies, case clauses and select clauses. Every statement is a direct
// child of exactly one such list, so a RangeStmt's "what happens after
// the loop" is the tail of its list.
func inspectStmtLists(f *ast.File, fn func(list []ast.Stmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

func checkMapRange(pass *Pass, rs *ast.RangeStmt, rest []ast.Stmt) {
	// Order-dependent appends: `s = append(s, ...)` where s outlives the
	// loop. Keyed by the slice's object so a later sort redeems it.
	appends := map[types.Object]token.Pos{}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass.TypesInfo, call) || i >= len(n.Lhs) {
					continue
				}
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				// Only slices that outlive the loop leak iteration order.
				if obj == nil || withinNode(rs, obj.Pos()) {
					continue
				}
				if _, seen := appends[obj]; !seen {
					appends[obj] = n.Pos()
				}
			}
		case *ast.CallExpr:
			if why := orderDependentCall(pass.TypesInfo, n); why != "" {
				pass.Reportf(n.Pos(), "map iteration order is randomized, so %s inside this loop produces non-deterministic output; iterate a sorted key slice instead", why)
			}
		}
		return true
	})

	for obj, pos := range appends {
		if sortedAfter(pass.TypesInfo, rest, obj) {
			continue
		}
		pass.Reportf(pos, "%s is appended to in map-iteration order and never sorted afterwards in this block; sort it (sort.*/slices.Sort*) or iterate sorted keys", obj.Name())
	}
}

// orderDependentCall classifies calls whose ordering is observable:
// output writers and the metrics registry. It returns a short
// description of the offense, or "".
func orderDependentCall(info *types.Info, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	// fmt.Print*/Fprint* write output directly.
	if pkgNameOf(info, sel) == "fmt" {
		switch sel.Sel.Name {
		case "Print", "Printf", "Println", "Fprint", "Fprintf", "Fprintln":
			return "fmt." + sel.Sel.Name
		}
	}
	// Write/WriteString/... methods on anything (io.Writer, strings.Builder,
	// bufio.Writer, csv.Writer's Write, ...).
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune":
		if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
			return "writing through ." + sel.Sel.Name
		}
	}
	// Feeding the metrics registry: any method on a type defined in
	// internal/metrics (Registry lookups, Counter.Add, Histogram.Observe...).
	if selection, ok := info.Selections[sel]; ok && selection.Kind() == types.MethodVal {
		if named, ok := derefType(selection.Recv()).(*types.Named); ok {
			if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == ModulePath+"/internal/metrics" {
				return "feeding the metrics registry (" + named.Obj().Name() + "." + sel.Sel.Name + ")"
			}
		}
	}
	return ""
}

// sortedAfter reports whether any statement in rest sorts obj: a call
// into package sort or slices whose arguments mention obj (possibly
// wrapped, as in sort.Sort(byName(list))), or an obj.Sort()-style
// method call.
func sortedAfter(info *types.Info, rest []ast.Stmt, obj types.Object) bool {
	found := false
	for _, stmt := range rest {
		ast.Inspect(stmt, func(n ast.Node) bool {
			if found {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			switch pkgNameOf(info, sel) {
			case "sort", "slices":
				for _, arg := range call.Args {
					if mentions(info, arg, obj) {
						found = true
						return false
					}
				}
			case "":
				// obj.Sort(...) or similar sorting method on the slice itself.
				if strings.Contains(sel.Sel.Name, "Sort") && mentions(info, sel.X, obj) {
					found = true
					return false
				}
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}

func mentions(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := info.Uses[id].(*types.Builtin)
	return isBuiltin
}

func withinNode(n ast.Node, pos token.Pos) bool {
	return n.Pos() <= pos && pos < n.End()
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}
