package lint_test

import (
	"testing"

	"threadcluster/internal/errs"
	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestErrWrap(t *testing.T) {
	linttest.Run(t, lint.ErrWrap, "testdata/errwrap", lint.ModulePath+"/internal/cache")
}

// TestErrWrapSkipsErrsPackage: the sentinel definitions themselves must
// not be flagged as duplicating... themselves.
func TestErrWrapSkipsErrsPackage(t *testing.T) {
	if lint.ErrWrap.Appropriate(lint.ModulePath + "/internal/errs") {
		t.Fatal("errwrap must not analyze internal/errs, where the sentinels are defined")
	}
}

// TestSentinelTableDerivedFromErrs: the analyzer's cross-package message
// table is generated at init from errs.Sentinels(), so it must contain
// exactly one entry per sentinel with the canonical display name. (The
// old hand-maintained table needed a sync test against each message;
// completeness of Sentinels() itself is pinned inside internal/errs by
// an AST-parsing test.)
func TestSentinelTableDerivedFromErrs(t *testing.T) {
	table := lint.KnownSentinelMessages()
	sentinels := errs.Sentinels()
	if len(table) != len(sentinels) {
		t.Errorf("table has %d entries, errs.Sentinels() has %d", len(table), len(sentinels))
	}
	for _, s := range sentinels {
		if got := table[s.Err.Error()]; got != "errs."+s.Name {
			t.Errorf("table[%q] = %q, want %q", s.Err, got, "errs."+s.Name)
		}
	}
}
