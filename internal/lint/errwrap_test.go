package lint_test

import (
	"testing"

	"threadcluster/internal/errs"
	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestErrWrap(t *testing.T) {
	linttest.Run(t, lint.ErrWrap, "testdata/errwrap", lint.ModulePath+"/internal/cache")
}

// TestErrWrapSkipsErrsPackage: the sentinel definitions themselves must
// not be flagged as duplicating... themselves.
func TestErrWrapSkipsErrsPackage(t *testing.T) {
	if lint.ErrWrap.Appropriate(lint.ModulePath + "/internal/errs") {
		t.Fatal("errwrap must not analyze internal/errs, where the sentinels are defined")
	}
}

// TestSentinelTableMatchesErrsPackage pins the analyzer's hardcoded
// message table (export data carries no initializer strings, so the
// cross-package check needs one) to the real internal/errs sentinels.
func TestSentinelTableMatchesErrsPackage(t *testing.T) {
	real := map[string]string{
		errs.ErrDuplicateThread.Error():  "errs.ErrDuplicateThread",
		errs.ErrUnknownThread.Error():    "errs.ErrUnknownThread",
		errs.ErrThreadRunning.Error():    "errs.ErrThreadRunning",
		errs.ErrBadConfig.Error():        "errs.ErrBadConfig",
		errs.ErrAlreadyInstalled.Error(): "errs.ErrAlreadyInstalled",
	}
	table := lint.KnownSentinelMessages()
	for msg, name := range real {
		if table[msg] != name {
			t.Errorf("analyzer sentinel table missing or mislabels %q (want %s, got %q)", msg, name, table[msg])
		}
	}
	for msg := range table {
		if _, ok := real[msg]; !ok {
			t.Errorf("analyzer sentinel table has stale entry %q; update it to match internal/errs", msg)
		}
	}
}
