package lint

import (
	"bytes"
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"threadcluster/internal/snapbin"
)

// checkSource type-checks one dependency-free source snippet and
// returns its package for object lookups.
func checkSource(t *testing.T, src string) *types.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := (&types.Config{}).Check("p", fset, []*ast.File{f}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return pkg
}

func TestObjectKey(t *testing.T) {
	pkg := checkSource(t, `package p

var Global int

func TopLevel() {
	local := 0
	_ = local
}

type T struct{ Field int }

func (T) ValueMethod()    {}
func (*T) PointerMethod() {}

type I interface{ IfaceMethod() }
`)
	scope := pkg.Scope()
	lookup := func(name string) types.Object {
		obj := scope.Lookup(name)
		if obj == nil {
			t.Fatalf("no package-level object %q", name)
		}
		return obj
	}

	named := lookup("T").Type().(*types.Named)
	var valueMethod, pointerMethod types.Object
	for i := 0; i < named.NumMethods(); i++ {
		switch m := named.Method(i); m.Name() {
		case "ValueMethod":
			valueMethod = m
		case "PointerMethod":
			pointerMethod = m
		}
	}
	iface := lookup("I").Type().Underlying().(*types.Interface)
	ifaceMethod := iface.Method(0)
	topLevel := lookup("TopLevel").(*types.Func)
	local := topLevel.Scope().Lookup("local")
	if local == nil {
		t.Fatal("no local in TopLevel scope")
	}
	field := named.Underlying().(*types.Struct).Field(0)

	cases := []struct {
		label  string
		obj    types.Object
		want   string
		wantOK bool
	}{
		{"package var", lookup("Global"), "Global", true},
		{"package func", topLevel, "TopLevel", true},
		{"type name", lookup("T"), "T", true},
		{"value method", valueMethod, "T.ValueMethod", true},
		{"pointer method", pointerMethod, "T.PointerMethod", true},
		{"interface method", ifaceMethod, "", false},
		{"local var", local, "", false},
		{"struct field", field, "", false},
		{"nil object", nil, "", false},
	}
	for _, c := range cases {
		got, ok := ObjectKey(c.obj)
		if got != c.want || ok != c.wantOK {
			t.Errorf("ObjectKey(%s) = (%q, %v), want (%q, %v)", c.label, got, ok, c.want, c.wantOK)
		}
	}
}

// put in two different insertion orders must encode identically — go
// vet caches vetx files by content, so any order sensitivity would
// thrash its build cache and desynchronize the two drivers.
func TestFactsEncodeDeterministic(t *testing.T) {
	entries := []struct {
		key     factKey
		payload []byte
	}{
		{factKey{"b/pkg", "F", "SeedSummaryFact"}, []byte{1, 2, 3}},
		{factKey{"a/pkg", "T.M", "SnapFieldsFact"}, []byte{4}},
		{factKey{"a/pkg", "T.M", "SeedSummaryFact"}, []byte{5, 6}},
		{factKey{"a/pkg", "A", "SeedSummaryFact"}, nil},
	}
	forward := NewFacts()
	for _, e := range entries {
		forward.put(e.key, e.payload)
	}
	backward := NewFacts()
	for i := len(entries) - 1; i >= 0; i-- {
		backward.put(entries[i].key, entries[i].payload)
	}
	a, b := forward.Encode(), backward.Encode()
	if !bytes.Equal(a, b) {
		t.Errorf("insertion order changed the encoding:\n%x\n%x", a, b)
	}
}

func TestFactsRoundTrip(t *testing.T) {
	src := NewFacts()
	src.put(factKey{"p/one", "F", "SeedSummaryFact"}, []byte{9, 9})
	src.put(factKey{"p/two", "T.Save", "SnapFieldsFact"}, []byte{})

	dst := NewFacts()
	if err := dst.DecodeFacts(src.Encode()); err != nil {
		t.Fatal(err)
	}
	if dst.Len() != src.Len() {
		t.Fatalf("round-trip kept %d of %d facts", dst.Len(), src.Len())
	}
	for k, v := range src.m {
		got, ok := dst.get(k)
		if !ok || !bytes.Equal(got, v) {
			t.Errorf("fact %+v: got (%x, %v), want (%x, true)", k, got, ok, v)
		}
	}
	if !bytes.Equal(dst.Encode(), src.Encode()) {
		t.Error("re-encoding the decoded store diverged")
	}
}

// A zero-byte blob is the pre-facts suite's vetx output; go vet may
// still hold such files in its cache, so decoding one must succeed as
// an empty store rather than error.
func TestFactsDecodeEmpty(t *testing.T) {
	f := NewFacts()
	if err := f.DecodeFacts(nil); err != nil {
		t.Fatalf("DecodeFacts(nil) = %v", err)
	}
	if f.Len() != 0 {
		t.Fatalf("empty decode produced %d facts", f.Len())
	}
}

func TestFactsDecodeRejectsForeignBytes(t *testing.T) {
	wrongMagic := &snapbin.Enc{}
	wrongMagic.Str("not-tclint")
	wrongMagic.U16(factsVersion)
	wrongMagic.U32(0)

	wrongVersion := &snapbin.Enc{}
	wrongVersion.Str(factsMagic)
	wrongVersion.U16(factsVersion + 1)
	wrongVersion.U32(0)

	for _, c := range []struct {
		label string
		data  []byte
	}{
		{"wrong magic", wrongMagic.Bytes()},
		{"wrong version", wrongVersion.Bytes()},
		{"garbage", []byte{0xff, 0xfe, 0xfd}},
		{"truncated", NewFacts().Encode()[:4]},
	} {
		f := NewFacts()
		err := f.DecodeFacts(c.data)
		if !errors.Is(err, snapbin.ErrCorrupt) {
			t.Errorf("%s: DecodeFacts = %v, want ErrCorrupt", c.label, err)
		}
	}
}

func TestFactsMerge(t *testing.T) {
	base := NewFacts()
	base.put(factKey{"p", "A", "SeedSummaryFact"}, []byte{1})
	overlay := NewFacts()
	overlay.put(factKey{"p", "A", "SeedSummaryFact"}, []byte{2})
	overlay.put(factKey{"p", "B", "SeedSummaryFact"}, []byte{3})
	base.Merge(overlay)
	if base.Len() != 2 {
		t.Fatalf("merged store has %d facts, want 2", base.Len())
	}
	if got, _ := base.get(factKey{"p", "A", "SeedSummaryFact"}); !bytes.Equal(got, []byte{2}) {
		t.Errorf("merge did not overwrite: got %x", got)
	}
}

// The two fact payload codecs must round-trip exactly: these bytes are
// what crosses the vetx boundary between go vet invocations.
func TestFactPayloadRoundTrip(t *testing.T) {
	seed := &SeedSummaryFact{
		ResultTraceable: true,
		ResultParams:    []uint32{0, 2},
		SinkGroups:      [][]uint32{{0}, {1, 3}},
	}
	e := &snapbin.Enc{}
	seed.EncodeFact(e)
	var seedBack SeedSummaryFact
	d := snapbin.NewDec(e.Bytes())
	if err := seedBack.DecodeFact(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	e2 := &snapbin.Enc{}
	seedBack.EncodeFact(e2)
	if !bytes.Equal(e.Bytes(), e2.Bytes()) {
		t.Errorf("SeedSummaryFact did not round-trip: %x vs %x", e.Bytes(), e2.Bytes())
	}

	snap := &SnapFieldsFact{Saved: []string{"clock", "hits"}}
	e = &snapbin.Enc{}
	snap.EncodeFact(e)
	var snapBack SnapFieldsFact
	d = snapbin.NewDec(e.Bytes())
	if err := snapBack.DecodeFact(d); err != nil {
		t.Fatal(err)
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}
	e2 = &snapbin.Enc{}
	snapBack.EncodeFact(e2)
	if !bytes.Equal(e.Bytes(), e2.Bytes()) {
		t.Errorf("SnapFieldsFact did not round-trip: %x vs %x", e.Bytes(), e2.Bytes())
	}
}
