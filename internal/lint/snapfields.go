package lint

import (
	"go/ast"
	"go/types"
	"sort"

	"threadcluster/internal/snapbin"
)

// SnapFields guards the snapshot contract: PR 6's N+M identity test
// proves a restored machine replays byte-identically only if every
// mutable field actually rides in the snapshot. The drift that breaks
// it is silent — add a field to a component, forget its snapshot
// section, and every existing test still passes until a restore
// diverges a release later. Two checks close that hole:
//
//  1. In-package: a state provider (a type with SaveState(*snapbin.Enc)
//     + RestoreState(*snapbin.Dec), or the value-state State() T +
//     Restore(T) pair) must mention every non-func field of its struct
//     in at least one of those two methods. A field neither saved nor
//     restored is either dead weight or missing state; the author
//     decides with an //tclint:allow.
//
//  2. Cross-package, via facts: a provider's type carries a
//     SnapFieldsFact, marking it snapshotable. Any struct whose state
//     code serializes at least one snapshotable component (calls its
//     SaveState/State/... through a field) must serialize all of its
//     snapshotable-typed fields — sim.Machine saving sched and cache
//     but not a newly added pmu slice is exactly the drift.
var SnapFields = &Analyzer{
	Name: "snapfields",
	Doc: "require state-provider types to serialize every mutable field, and containers that " +
		"snapshot one snapshotable component to snapshot all of them (facts mark provider " +
		"types across package boundaries)",
	Appropriate: inLibrary,
	Run:         runSnapFields,
}

// SnapFieldsFact marks a type as snapshotable and records which of its
// fields its own state methods touch. Attached to the type's TypeName.
type SnapFieldsFact struct {
	Saved []string
}

func (*SnapFieldsFact) AFact() {}

func (f *SnapFieldsFact) EncodeFact(e *snapbin.Enc) {
	e.U32(uint32(len(f.Saved)))
	for _, s := range f.Saved {
		e.Str(s)
	}
}

func (f *SnapFieldsFact) DecodeFact(d *snapbin.Dec) error {
	f.Saved = nil
	n := d.Count(4)
	for i := 0; i < n && d.Err() == nil; i++ {
		f.Saved = append(f.Saved, d.Str())
	}
	return d.Err()
}

// snapVerbs are the method names through which one component serializes
// another. Seeing `x.f.SaveState(...)` (called or passed as a method
// value) counts field f as snapshotted by x's state code.
var snapVerbs = map[string]bool{
	"SaveState":     true,
	"RestoreState":  true,
	"SnapshotState": true,
	"State":         true,
	"Restore":       true,
}

// stateFuncNames are function names that, beyond any function touching
// *snapbin.Enc/Dec, count as state code for the cross-package check.
var stateFuncNames = map[string]bool{
	"SaveState":       true,
	"RestoreState":    true,
	"SnapshotState":   true,
	"RestoreSnapshot": true,
	"Snapshot":        true,
	"State":           true,
	"Restore":         true,
}

func runSnapFields(pass *Pass) error {
	structs := packageStructs(pass)

	// fieldOwner maps every struct field back to its named type so
	// serialization verbs can be attributed no matter where they occur.
	fieldOwner := make(map[*types.Var]*types.Named)
	for _, s := range structs {
		st := s.named.Underlying().(*types.Struct)
		for i := 0; i < st.NumFields(); i++ {
			fieldOwner[st.Field(i)] = s.named
		}
	}

	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					decls[obj] = fd
				}
			}
		}
	}

	// Check 1: providers must mention every non-func field in their
	// state methods. reported tracks findings so check 2 does not
	// repeat them.
	providers := make(map[*types.Named]bool)
	reported := make(map[*types.Var]bool)
	for _, s := range structs {
		save, restore := stateMethodsOf(pass, s.named)
		if save == nil || restore == nil {
			continue
		}
		providers[s.named] = true
		referenced := make(map[*types.Var]bool)
		for _, m := range []*types.Func{save, restore} {
			if decl := decls[m]; decl != nil {
				markFieldRefs(pass, decl, s.named, referenced)
			}
		}
		st := s.named.Underlying().(*types.Struct)
		var saved []string
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if referenced[f] {
				saved = append(saved, f.Name())
				continue
			}
			if _, isFunc := f.Type().Underlying().(*types.Signature); isFunc {
				continue // closures are never serialized by contract
			}
			reported[f] = true
			pass.Reportf(f.Pos(), "field %s of state provider %s appears in neither %s nor %s; serialize it or justify the omission",
				f.Name(), s.named.Obj().Name(), save.Name(), restore.Name())
		}
		sort.Strings(saved)
		pass.ExportObjectFact(s.named.Obj(), &SnapFieldsFact{Saved: saved})
	}

	// Check 2: state code that serializes one snapshotable field must
	// serialize all of them. Serialization marks are collected package-
	// wide from every state function (methods and free helpers alike),
	// attributed to the field's owning type.
	snapshotable := func(n *types.Named) bool {
		if providers[n] {
			return true
		}
		if n.Obj().Pkg() == nil || n.Obj().Pkg() == pass.Pkg {
			return false
		}
		var f SnapFieldsFact
		return pass.ImportObjectFact(n.Obj(), &f)
	}
	marked := make(map[*types.Var]bool)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !isStateFunc(pass, fd) {
				continue
			}
			markSnapVerbs(pass, fd, fieldOwner, marked)
		}
	}
	for _, s := range structs {
		st := s.named.Underlying().(*types.Struct)
		var snapFields []*types.Var
		anyMarked := false
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			comp := componentNamed(f.Type())
			if comp == nil || !snapshotable(comp) {
				continue
			}
			snapFields = append(snapFields, f)
			if marked[f] {
				anyMarked = true
			}
		}
		if !anyMarked {
			continue
		}
		for _, f := range snapFields {
			if marked[f] || reported[f] {
				continue
			}
			pass.Reportf(f.Pos(), "%s serializes some snapshotable components but never field %s (%s); snapshot section drift — serialize it or justify the omission",
				s.named.Obj().Name(), f.Name(), componentNamed(f.Type()).Obj().Name())
		}
	}
	return nil
}

type namedStruct struct {
	named *types.Named
}

// packageStructs returns the package-scope struct types in declaration
// (scope-name) order.
func packageStructs(pass *Pass) []namedStruct {
	var out []namedStruct
	scope := pass.Pkg.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		named, ok := tn.Type().(*types.Named)
		if !ok {
			continue
		}
		if _, ok := named.Underlying().(*types.Struct); !ok {
			continue
		}
		out = append(out, namedStruct{named: named})
	}
	return out
}

// stateMethodsOf detects the provider shape on a named type: the
// snapbin pair SaveState(*Enc)/RestoreState(*Dec), or the value-state
// pair State() T / Restore(T).
func stateMethodsOf(pass *Pass, named *types.Named) (save, restore *types.Func) {
	method := func(name string) *types.Func {
		for i := 0; i < named.NumMethods(); i++ {
			if m := named.Method(i); m.Name() == name {
				return m
			}
		}
		return nil
	}
	save, restore = method("SaveState"), method("RestoreState")
	if save != nil && restore != nil &&
		hasSnapbinParam(save, "Enc") && hasSnapbinParam(restore, "Dec") {
		return save, restore
	}
	st, rst := method("State"), method("Restore")
	if st != nil && rst != nil {
		ssig := st.Type().(*types.Signature)
		rsig := rst.Type().(*types.Signature)
		if ssig.Params().Len() == 0 && ssig.Results().Len() == 1 &&
			rsig.Params().Len() == 1 &&
			types.Identical(ssig.Results().At(0).Type(), rsig.Params().At(0).Type()) {
			return st, rst
		}
	}
	return nil, nil
}

func hasSnapbinParam(fn *types.Func, typeName string) bool {
	sig := fn.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isSnapbinType(sig.Params().At(i).Type(), typeName) {
			return true
		}
	}
	return false
}

func isSnapbinType(t types.Type, typeName string) bool {
	p, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := types.Unalias(p.Elem()).(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return named.Obj().Pkg().Path() == ModulePath+"/internal/snapbin" && named.Obj().Name() == typeName
}

// isStateFunc reports whether a function participates in snapshot
// serialization: it handles a snapbin encoder/decoder, or bears a
// snapshot-verb name.
func isStateFunc(pass *Pass, fd *ast.FuncDecl) bool {
	if stateFuncNames[fd.Name.Name] {
		return true
	}
	obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
	if !ok {
		return false
	}
	sig := obj.Type().(*types.Signature)
	for i := 0; i < sig.Params().Len(); i++ {
		if isSnapbinType(sig.Params().At(i).Type(), "Enc") || isSnapbinType(sig.Params().At(i).Type(), "Dec") {
			return true
		}
	}
	return false
}

// markFieldRefs marks every field of owner that decl's body mentions.
func markFieldRefs(pass *Pass, decl *ast.FuncDecl, owner *types.Named, out map[*types.Var]bool) {
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := pass.TypesInfo.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if f, ok := s.Obj().(*types.Var); ok {
			st := owner.Underlying().(*types.Struct)
			for i := 0; i < st.NumFields(); i++ {
				if st.Field(i) == f {
					out[f] = true
				}
			}
		}
		return true
	})
}

// markSnapVerbs finds every `<field-expr>.Verb` method selection in fd
// and marks the underlying struct field as serialized. The field
// expression may be indexed, parenthesized, dereferenced, or an alias
// established by `x := s.field` / `for _, x := range s.field`.
func markSnapVerbs(pass *Pass, fd *ast.FuncDecl, fieldOwner map[*types.Var]*types.Named, marked map[*types.Var]bool) {
	// Alias pass: locals bound to a field (or an element of one).
	alias := make(map[*types.Var]*types.Var) // local -> field
	fieldOf := func(e ast.Expr) *types.Var {
		if sel, ok := peelToSelector(e); ok {
			if s := pass.TypesInfo.Selections[sel]; s != nil && s.Kind() == types.FieldVal {
				if f, ok := s.Obj().(*types.Var); ok && fieldOwner[f] != nil {
					return f
				}
			}
		}
		return nil
	}
	resolve := func(e ast.Expr) *types.Var {
		if f := fieldOf(e); f != nil {
			return f
		}
		if id, ok := ast.Unparen(e).(*ast.Ident); ok {
			if v, ok := pass.TypesInfo.Uses[id].(*types.Var); ok {
				return alias[v]
			}
		}
		return nil
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if id, ok := n.Value.(*ast.Ident); ok {
				if v, ok := pass.TypesInfo.Defs[id].(*types.Var); ok {
					if f := fieldOf(n.X); f != nil {
						alias[v] = f
					}
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok {
					if f := fieldOf(n.Rhs[i]); f != nil {
						alias[v] = f
					}
				}
			}
		}
		return true
	})
	// Verb pass: any method selection named like a snapshot verb whose
	// receiver expression resolves to a struct field.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok || !snapVerbs[sel.Sel.Name] {
			return true
		}
		if s := pass.TypesInfo.Selections[sel]; s == nil || s.Kind() == types.FieldVal {
			return true // qualified ident or a field that merely shares a verb name
		}
		if f := resolve(sel.X); f != nil {
			marked[f] = true
		}
		return true
	})
}

// peelToSelector strips index, paren, star and address-of layers off an
// expression, reporting the selector underneath, if any.
func peelToSelector(e ast.Expr) (*ast.SelectorExpr, bool) {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.SelectorExpr:
			return x, true
		default:
			return nil, false
		}
	}
}

// componentNamed unwraps pointers, slices, arrays and map values to the
// named type a field stores, if any.
func componentNamed(t types.Type) *types.Named {
	for {
		switch u := types.Unalias(t).(type) {
		case *types.Pointer:
			t = u.Elem()
		case *types.Slice:
			t = u.Elem()
		case *types.Array:
			t = u.Elem()
		case *types.Map:
			t = u.Elem()
		case *types.Named:
			return u
		default:
			return nil
		}
	}
}
