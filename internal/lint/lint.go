// Package lint is the project's static-analysis suite: eight analyzers
// that enforce the determinism, error-wrapping, context, deprecation-
// hygiene, seed-provenance and snapshot-coverage contracts the
// simulator's differential tests rely on dynamically. The sweep
// runner promises byte-identical results for any worker count and the
// coherence differential harness requires byte-identical AccessResults
// between broadcast and directory mode; a single stray time.Now, global
// math/rand call or unsorted map iteration in a result path silently
// voids both. These analyzers catch that class of regression at vet
// time instead of waiting for a differential test to flake.
//
// The package is deliberately built on the standard library's go/ast
// and go/types only (no golang.org/x/tools dependency), but mirrors the
// go/analysis Analyzer/Pass shape so the analyzers would port to a
// multichecker mechanically. Two drivers run them: a standalone one
// (Load + RunPackages, used by `tclint ./...`) that type-checks against
// `go list -export` data, and a unitchecker-protocol one (UnitcheckerMain)
// so the same binary works as `go vet -vettool=$(TCLINT)`.
//
// Suppression: a `//tclint:allow <name>[,<name>...] -- <reason>` comment
// on the offending line, or on the line directly above it, silences the
// named analyzers for that line. When RequireAllowReason is set (both
// tclint drivers set it; the golden-test harness does not), a
// suppression without a `-- reason` is itself a diagnostic: the repo's
// own tree must justify every allowance.
//
// Interprocedural analyzers (seedflow, snapfields) additionally
// exchange Facts across package boundaries; see facts.go for the
// mechanism and codec.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// ModulePath is the module the scoping rules below are written against.
const ModulePath = "threadcluster"

// allowPrefix is the magic comment that suppresses a diagnostic.
const allowPrefix = "//tclint:allow"

// An Analyzer is one named check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer so the checks port to a real
// multichecker without rewriting.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //tclint:allow comments.
	Name string

	// Doc is the one-paragraph contract the analyzer enforces.
	Doc string

	// Appropriate reports whether the analyzer applies to the package
	// with the given import path. A nil Appropriate means every
	// package.
	Appropriate func(pkgPath string) bool

	// Run performs the check, reporting findings through pass.Reportf.
	Run func(pass *Pass) error
}

// A Pass carries one analyzer's view of one type-checked package, plus
// the facts store shared across the whole run (ExportObjectFact /
// ImportObjectFact in facts.go).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	PkgPath   string
	Pkg       *types.Package
	TypesInfo *types.Info

	facts  *Facts
	report func(Diagnostic)
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// A Diagnostic is one finding, positioned and attributed to its analyzer.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: [%s] %s", d.Pos, d.Analyzer, d.Message)
}

// Package is one loaded, type-checked package ready for analysis.
// DepOnly marks packages loaded only because a target depends on them:
// they are analyzed for the facts they export, but their diagnostics
// are withheld.
type Package struct {
	PkgPath string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
	DepOnly bool
}

// NewTypesInfo returns a types.Info with every map the analyzers read
// populated.
func NewTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Implicits:  make(map[ast.Node]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// RequireAllowReason makes a `//tclint:allow` comment without a
// `-- reason` justification a diagnostic in its own right. Both tclint
// drivers set it (every suppression surviving in the repo tree must
// explain itself); the linttest golden harness leaves it unset so
// golden packages can exercise the bare-comment parse path.
var RequireAllowReason bool

// RunPackage applies every appropriate analyzer to pkg with a fresh,
// private facts store and returns the surviving (non-suppressed)
// diagnostics sorted by position. Cross-package fact flow needs
// RunPackageFacts with a store shared across packages.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return RunPackageFacts(pkg, analyzers, NewFacts())
}

// RunPackageFacts applies every appropriate analyzer to pkg, importing
// facts from and exporting facts to the given store. For fact flow to be
// complete, packages must be analyzed in dependency order against the
// same store (the standalone driver) or the store must be pre-loaded
// from the dependencies' vetx files (the unitchecker driver).
func RunPackageFacts(pkg *Package, analyzers []*Analyzer, facts *Facts) ([]Diagnostic, error) {
	suppressions, bare := collectSuppressions(pkg.Fset, pkg.Files)
	var diags []Diagnostic
	if RequireAllowReason {
		for _, pos := range bare {
			diags = append(diags, Diagnostic{
				Pos:      pos,
				Analyzer: "allowreason",
				Message:  "//tclint:allow without a '-- reason' justification; explain why the finding is acceptable",
			})
		}
	}
	for _, a := range analyzers {
		if a.Appropriate != nil && !a.Appropriate(pkg.PkgPath) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			PkgPath:   pkg.PkgPath,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			facts:     facts,
		}
		pass.report = func(d Diagnostic) {
			if suppressions.allows(d.Pos.Filename, d.Pos.Line, d.Analyzer) {
				return
			}
			diags = append(diags, d)
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %w", a.Name, pkg.PkgPath, err)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		di, dj := diags[i].Pos, diags[j].Pos
		if di.Filename != dj.Filename {
			return di.Filename < dj.Filename
		}
		if di.Line != dj.Line {
			return di.Line < dj.Line
		}
		return di.Column < dj.Column
	})
	return diags, nil
}

// suppressionIndex maps file -> line -> set of analyzer names allowed on
// that line. An //tclint:allow comment covers its own line and the line
// below it, so it works both as a trailing comment and on its own line
// above the finding.
type suppressionIndex map[string]map[int]map[string]bool

func (s suppressionIndex) allows(file string, line int, analyzer string) bool {
	lines := s[file]
	if lines == nil {
		return false
	}
	return lines[line][analyzer] || lines[line]["*"]
}

// collectSuppressions indexes every //tclint:allow comment and returns,
// alongside the index, the positions of bare allows — suppressions with
// no '-- reason' justification — for RequireAllowReason enforcement.
func collectSuppressions(fset *token.FileSet, files []*ast.File) (suppressionIndex, []token.Position) {
	idx := make(suppressionIndex)
	var bare []token.Position
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, reason, ok := parseAllow(c.Text)
				if !ok {
					continue
				}
				pos := fset.Position(c.Pos())
				if reason == "" {
					bare = append(bare, pos)
				}
				lines := idx[pos.Filename]
				if lines == nil {
					lines = make(map[int]map[string]bool)
					idx[pos.Filename] = lines
				}
				for _, target := range []int{pos.Line, pos.Line + 1} {
					set := lines[target]
					if set == nil {
						set = make(map[string]bool)
						lines[target] = set
					}
					for _, n := range names {
						set[n] = true
					}
				}
			}
		}
	}
	return idx, bare
}

// parseAllow extracts the analyzer names and the justification from an
// //tclint:allow comment. The justification is the trimmed text after
// "--"; an absent or empty one comes back as "".
func parseAllow(text string) (names []string, reason string, ok bool) {
	if !strings.HasPrefix(text, allowPrefix) {
		return nil, "", false
	}
	rest := text[len(allowPrefix):]
	if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
		return nil, "", false // e.g. //tclint:allowed — not ours
	}
	if i := strings.Index(rest, "--"); i >= 0 {
		reason = strings.TrimSpace(rest[i+len("--"):])
		rest = rest[:i]
	}
	for _, field := range strings.FieldsFunc(rest, func(r rune) bool {
		return r == ',' || r == ' ' || r == '\t'
	}) {
		names = append(names, field)
	}
	return names, reason, len(names) > 0
}

// All returns the full suite in stable order. The first six are
// package-local; seedflow and snapfields are interprocedural and need
// facts from the package's dependencies to be complete.
func All() []*Analyzer {
	return []*Analyzer{
		DetRand,
		Wallclock,
		MapOrder,
		ErrWrap,
		CtxPlumb,
		NoDeprecated,
		SeedFlow,
		SnapFields,
	}
}

// inModule reports whether path is the root package or any package under
// the module (internal/..., cmd/..., examples/...).
func inModule(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/")
}

// inLibrary reports whether path is "library code": the root package or
// anything under internal/. cmd/ and examples/ are front ends.
func inLibrary(path string) bool {
	return path == ModulePath || strings.HasPrefix(path, ModulePath+"/internal/")
}

// pkgNameOf resolves sel's X to an imported package name, returning its
// import path, or "" if X is not a bare package qualifier.
func pkgNameOf(info *types.Info, sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pn, ok := info.Uses[id].(*types.PkgName)
	if !ok {
		return ""
	}
	return pn.Imported().Path()
}
