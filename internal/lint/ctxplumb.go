package lint

import (
	"go/ast"
	"go/types"
)

// ctxFirstPackages are the packages whose exported blocking functions
// must take a context.Context as their first parameter: the public API
// surface callers cancel through.
var ctxFirstPackages = map[string]bool{
	ModulePath:                           true,
	ModulePath + "/internal/sweep":       true,
	ModulePath + "/internal/core":        true,
	ModulePath + "/internal/server":      true,
	ModulePath + "/internal/client":      true,
	ModulePath + "/internal/experiments": true,
	ModulePath + "/internal/fleet":       true,
}

// CtxPlumb enforces the cancellation contract. Two rules:
//
//  1. In the ctxFirstPackages set (the root package, internal/sweep,
//     internal/core, internal/server, internal/client,
//     internal/experiments and internal/fleet), an exported function
//     or method that can
//     block (channel operations, select, WaitGroup.Wait, time.Sleep)
//     must take a context.Context as its first parameter, so a sweep or
//     job under a deadline can always be cancelled.
//  2. Library code (root package + internal/...) never calls
//     context.Background() or context.TODO(): manufacturing a fresh
//     root context severs the caller's cancellation chain. Contexts are
//     plumbed in, not created.
var CtxPlumb = &Analyzer{
	Name: "ctxplumb",
	Doc: "exported blocking funcs in the API surface take ctx first; " +
		"library code plumbs contexts instead of calling context.Background/TODO",
	Appropriate: inLibrary,
	Run:         runCtxPlumb,
}

func runCtxPlumb(pass *Pass) error {
	checkSignatures := ctxFirstPackages[pass.PkgPath]
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if checkSignatures && fd.Name.IsExported() && fd.Body != nil {
				checkBlockingSignature(pass, fd)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || pkgNameOf(pass.TypesInfo, sel) != "context" {
				return true
			}
			if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
				pass.Reportf(call.Pos(), "context.%s() in library code severs the caller's cancellation chain; accept a ctx parameter and plumb it through", sel.Sel.Name)
			}
			return true
		})
	}
	return nil
}

func checkBlockingSignature(pass *Pass, fd *ast.FuncDecl) {
	how := blockingOp(pass, fd.Body)
	if how == "" {
		return
	}
	params := fd.Type.Params
	if params != nil && len(params.List) > 0 && isContextType(pass.TypesInfo, params.List[0].Type) {
		return
	}
	// A context parameter in the wrong position is its own offense.
	if params != nil {
		for i, field := range params.List {
			if i > 0 && isContextType(pass.TypesInfo, field.Type) {
				pass.Reportf(fd.Name.Pos(), "exported %s takes a context.Context but not as its first parameter; ctx comes first by convention", fd.Name.Name)
				return
			}
		}
	}
	pass.Reportf(fd.Name.Pos(), "exported %s can block (%s) but takes no context.Context; add ctx as the first parameter so callers can cancel", fd.Name.Name, how)
}

// blockingOp returns a description of the first construct that can
// block indefinitely in the node, or "".
func blockingOp(pass *Pass, root ast.Node) string {
	var how string
	ast.Inspect(root, func(n ast.Node) bool {
		if how != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			// A goroutine body blocking is the goroutine's business,
			// not the signature's.
			return false
		case *ast.SelectStmt:
			hasDefault := false
			for _, clause := range n.Body.List {
				if cc, ok := clause.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				how = "select"
				return false
			}
			// A select with a default clause never blocks in its comm
			// operations, but the clause bodies still execute.
			for _, clause := range n.Body.List {
				cc := clause.(*ast.CommClause)
				for _, s := range cc.Body {
					if h := blockingOp(pass, s); h != "" {
						how = h
						break
					}
				}
			}
			return false
		case *ast.SendStmt:
			how = "channel send"
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				how = "channel receive"
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				if sel.Sel.Name == "Wait" {
					if selection, ok := pass.TypesInfo.Selections[sel]; ok && selection.Kind() == types.MethodVal {
						if named, ok := derefType(selection.Recv()).(*types.Named); ok {
							if pkg := named.Obj().Pkg(); pkg != nil && pkg.Path() == "sync" {
								how = "sync." + named.Obj().Name() + ".Wait"
							}
						}
					}
				}
				if pkgNameOf(pass.TypesInfo, sel) == "time" && sel.Sel.Name == "Sleep" {
					how = "time.Sleep"
				}
			}
		}
		return how == ""
	})
	return how
}

func isContextType(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
