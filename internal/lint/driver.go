package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
)

// listedPackage is the subset of `go list -json` output the driver needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves patterns with the go command and returns each matched
// package parsed and type-checked against `go list -export` data, in
// dependency order (every package after all of its dependencies — the
// order `go list -deps` emits). Module packages that are dependencies
// of the matched set but not matched themselves are loaded too, marked
// DepOnly: the facts pass must see them for cross-package provenance
// even when the user asks for a subtree, but their diagnostics are not
// the user's to fix right now. Only non-test Go files are loaded — the
// determinism contracts govern what ships, and benchmarks/tests
// legitimately use wall time and ad hoc randomness.
func Load(dir string, patterns []string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := make(map[string]string)
	var targets []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && (!p.DepOnly || inModule(p.ImportPath)) {
			pkg := p
			targets = append(targets, &pkg)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkg.DepOnly = t.DepOnly
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// checkPackage parses and type-checks one package's files.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, filenames []string) (*Package, error) {
	var files []*ast.File
	for _, name := range filenames {
		full := name
		if !filepath.IsAbs(full) {
			full = filepath.Join(dir, name)
		}
		f, err := parser.ParseFile(fset, full, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	info := NewTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{PkgPath: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

// Run loads patterns (relative to dir) and applies the analyzers,
// returning all surviving diagnostics in package order. A single facts
// store is threaded through every package in dependency order, so the
// interprocedural analyzers see the same facts here that they would see
// round-tripped through vetx files under `go vet -vettool=`. Packages
// loaded only as dependencies contribute facts but no diagnostics.
func Run(dir string, patterns []string, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, err
	}
	facts := NewFacts()
	var diags []Diagnostic
	for _, pkg := range pkgs {
		ds, err := RunPackageFacts(pkg, analyzers, facts)
		if err != nil {
			return nil, err
		}
		if !pkg.DepOnly {
			diags = append(diags, ds...)
		}
	}
	return diags, nil
}
