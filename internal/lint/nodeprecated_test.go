package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestNoDeprecated(t *testing.T) {
	linttest.Run(t, lint.NoDeprecated, "testdata/nodeprecated", lint.ModulePath+"/internal/sim")
}

// TestNoDeprecatedOutOfModule: the analyzer polices the module only;
// a package outside it is not analyzed at all.
func TestNoDeprecatedOutOfModule(t *testing.T) {
	if lint.NoDeprecated.Appropriate("example.com/other") {
		t.Error("nodeprecated should not apply outside the module")
	}
	if !lint.NoDeprecated.Appropriate(lint.ModulePath + "/cmd/tcsim") {
		t.Error("nodeprecated must cover cmd/ packages: front ends accrue migration debt too")
	}
}
