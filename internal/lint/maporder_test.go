package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder", lint.ModulePath+"/internal/experiments")
}
