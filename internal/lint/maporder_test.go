package lint_test

import (
	"testing"

	"threadcluster/internal/lint"
	"threadcluster/internal/lint/linttest"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder", lint.ModulePath+"/internal/experiments")
}

// TestMapOrderModuleImport exercises the metrics-registry heuristic
// against the real internal/metrics package (resolved through the
// module-aware importer) rather than local stand-ins: receivers must be
// recognized by their defining package path, not their name.
func TestMapOrderModuleImport(t *testing.T) {
	linttest.Run(t, lint.MapOrder, "testdata/maporder_module", lint.ModulePath+"/internal/experiments")
}
