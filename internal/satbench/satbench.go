// Package satbench analyzes saturation benchmark sweeps: grids of
// (chips x cores-per-chip x access intensity) cells, each carrying a
// measured wall-clock cost per simulated memory reference under the
// sequential and the chip-parallel engine.
//
// The package is pure analysis — it never reads a clock and never runs a
// simulation. `tcsim bench-sweep` (under cmd/, where wall-clock reads are
// allowed) produces the cells; everything here is a deterministic function
// of them, so knee detection and report assembly are unit-testable and the
// committed BENCH_sim.json sweep section is reproducible from its cells.
//
// Two knee families are extracted, one per sweep axis:
//
//   - chips-axis knees ("parallel knees"): for each (cores-per-chip,
//     intensity) curve, where the parallel-vs-seq speedup stops growing
//     with machine size. This is the saturation point of the chip-parallel
//     engine — past it, adding chips buys coordination, not throughput.
//   - intensity-axis knees ("cost knees"): for each (chips,
//     cores-per-chip) curve, where the sequential per-reference cost
//     stops climbing with the shared-access fraction. Past it the
//     coherence machinery is saturated: almost every access already pays
//     the cross-chip path.
//
// Knees are located with the Kneedle chord construction (Satopaa et al.,
// "Finding a 'Kneedle' in a Haystack"): normalize the curve to the unit
// square and take the point farthest above the diagonal. Curves that never
// rise above their chord (linear, convex, or monotonically degrading — the
// shape a one-core host produces for speedup curves) have no knee, and the
// report says so rather than inventing one.
package satbench

import (
	"fmt"
	"sort"
)

// Cell is one measured grid point of the sweep.
type Cell struct {
	// Chips, CoresPerChip describe the simulated machine (SMT contexts
	// per core are fixed by the sweep, Power5-style 2).
	Chips        int `json:"chips"`
	CoresPerChip int `json:"cores_per_chip"`
	// Intensity is the shared-access fraction of the synthetic workload
	// in [0, 1] — the knob that drives coherence traffic.
	Intensity float64 `json:"intensity"`
	// SeqNsPerRef / ParNsPerRef are measured host-wall-clock nanoseconds
	// per simulated memory reference under each engine.
	SeqNsPerRef float64 `json:"seq_ns_per_ref"`
	ParNsPerRef float64 `json:"par_ns_per_ref"`
}

// Speedup returns the parallel-vs-seq ratio of the cell (> 1 means the
// chip-parallel engine wins). Zero when the parallel side was not
// measured.
func (c Cell) Speedup() float64 {
	if c.ParNsPerRef == 0 {
		return 0
	}
	return c.SeqNsPerRef / c.ParNsPerRef
}

// Valid reports whether the cell's coordinates and measurements are
// usable for analysis.
func (c Cell) Valid() error {
	if c.Chips <= 0 || c.CoresPerChip <= 0 {
		return fmt.Errorf("satbench: cell needs positive chips and cores, got %d x %d", c.Chips, c.CoresPerChip)
	}
	if c.Intensity < 0 || c.Intensity > 1 {
		return fmt.Errorf("satbench: intensity %v outside [0, 1]", c.Intensity)
	}
	if c.SeqNsPerRef <= 0 || c.ParNsPerRef <= 0 {
		return fmt.Errorf("satbench: cell %dx%d@%v has non-positive timing", c.Chips, c.CoresPerChip, c.Intensity)
	}
	return nil
}

// Axis names the sweep dimension a knee was found along.
type Axis string

const (
	// AxisChips marks a parallel knee: speedup vs machine size.
	AxisChips Axis = "chips"
	// AxisIntensity marks a cost knee: seq ns/ref vs shared fraction.
	AxisIntensity Axis = "intensity"
)

// Knee is one detected saturation point.
type Knee struct {
	Axis Axis `json:"axis"`
	// CoresPerChip is the fixed cores-per-chip coordinate of the curve.
	CoresPerChip int `json:"cores_per_chip"`
	// Intensity is the fixed intensity for chips-axis knees.
	Intensity float64 `json:"intensity,omitempty"`
	// Chips is the fixed machine size for intensity-axis knees.
	Chips int `json:"chips,omitempty"`
	// At is the knee's position along the axis (a chip count or an
	// intensity).
	At float64 `json:"at"`
	// Value is the curve's value at the knee: a speedup ratio for
	// chips-axis knees, seq ns/ref for intensity-axis knees.
	Value float64 `json:"value"`
}

// Host records where the sweep ran; a one-core container cannot show a
// parallel win, and the committed report must say so.
type Host struct {
	Cores      int `json:"cores"`
	GoMaxProcs int `json:"gomaxprocs"`
}

// Report is the analyzed sweep, the shape committed under the "sweep"
// key of BENCH_sim.json.
type Report struct {
	// Note carries the producer's honest context (host limitations,
	// rounds per cell, workload shape).
	Note  string `json:"note,omitempty"`
	Host  Host   `json:"host"`
	Cells []Cell `json:"cells"`
	Knees []Knee `json:"knees"`
}

// KneeIndex locates the knee of a curve by the Kneedle chord rule:
// normalize (xs, ys) to the unit square and return the index of the point
// farthest above the chord joining the endpoints. It returns -1 when the curve has
// fewer than 3 points, no x- or y-extent, or never rises meaningfully
// above its chord (no knee: the curve is linear, convex, or degrading).
// xs must be strictly increasing. Ties break to the earliest index, so
// the result is deterministic.
func KneeIndex(xs, ys []float64) int {
	if len(xs) != len(ys) || len(xs) < 3 {
		return -1
	}
	xr := xs[len(xs)-1] - xs[0]
	ymin, ymax := ys[0], ys[0]
	for _, y := range ys[1:] {
		if y < ymin {
			ymin = y
		}
		if y > ymax {
			ymax = y
		}
	}
	if xr <= 0 || ymax <= ymin {
		return -1
	}
	// aboveChordMin is the normalized distance a point must clear the
	// chord by before it counts as a knee: 1% of the unit square, enough
	// to reject measurement jitter on an essentially straight curve.
	const aboveChordMin = 0.01
	yr := ymax - ymin
	y0 := (ys[0] - ymin) / yr
	y1 := (ys[len(ys)-1] - ymin) / yr
	best, bestD := -1, aboveChordMin
	for i := 1; i < len(xs)-1; i++ {
		xn := (xs[i] - xs[0]) / xr
		yn := (ys[i] - ymin) / yr
		chord := y0 + (y1-y0)*xn
		if d := yn - chord; d > bestD {
			best, bestD = i, d
		}
	}
	return best
}

// BuildReport sorts the cells canonically, validates them, extracts both
// knee families, and assembles the committed report. The result is a
// pure function of (note, host, cells): shuffling the input cells does
// not change a byte of it.
func BuildReport(note string, host Host, cells []Cell) (Report, error) {
	sorted := make([]Cell, len(cells))
	copy(sorted, cells)
	for _, c := range sorted {
		if err := c.Valid(); err != nil {
			return Report{}, err
		}
	}
	sort.Slice(sorted, func(i, j int) bool {
		a, b := sorted[i], sorted[j]
		if a.CoresPerChip != b.CoresPerChip {
			return a.CoresPerChip < b.CoresPerChip
		}
		if a.Intensity != b.Intensity {
			return a.Intensity < b.Intensity
		}
		return a.Chips < b.Chips
	})
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return Report{}, fmt.Errorf("satbench: duplicate cell %+v", sorted[i])
		}
	}
	r := Report{Note: note, Host: host, Cells: sorted}
	r.Knees = append(r.Knees, chipKnees(sorted)...)
	r.Knees = append(r.Knees, intensityKnees(sorted)...)
	return r, nil
}

// chipKnees extracts the parallel knees: one speedup-vs-chips curve per
// (cores-per-chip, intensity) pair.
func chipKnees(sorted []Cell) []Knee {
	var knees []Knee
	group(sorted,
		func(c Cell) [2]float64 { return [2]float64{float64(c.CoresPerChip), c.Intensity} },
		func(c Cell) float64 { return float64(c.Chips) },
		func(c Cell) float64 { return c.Speedup() },
		func(first Cell, at, value float64) {
			knees = append(knees, Knee{
				Axis:         AxisChips,
				CoresPerChip: first.CoresPerChip,
				Intensity:    first.Intensity,
				At:           at,
				Value:        value,
			})
		})
	return knees
}

// intensityKnees extracts the cost knees: one seq-ns/ref-vs-intensity
// curve per (cores-per-chip, chips) pair.
func intensityKnees(sorted []Cell) []Knee {
	var knees []Knee
	group(sorted,
		func(c Cell) [2]float64 { return [2]float64{float64(c.CoresPerChip), float64(c.Chips)} },
		func(c Cell) float64 { return c.Intensity },
		func(c Cell) float64 { return c.SeqNsPerRef },
		func(first Cell, at, value float64) {
			knees = append(knees, Knee{
				Axis:         AxisIntensity,
				CoresPerChip: first.CoresPerChip,
				Chips:        first.Chips,
				At:           at,
				Value:        value,
			})
		})
	return knees
}

// group slices the canonically sorted cells into curves keyed by keyOf,
// sorts each curve along x, and emits a knee per curve that has one.
// Iteration follows the cells' canonical order, so output order is
// deterministic.
func group(sorted []Cell, keyOf func(Cell) [2]float64, xOf, yOf func(Cell) float64, emit func(first Cell, at, value float64)) {
	curves := make(map[[2]float64][]Cell)
	var order [][2]float64
	for _, c := range sorted {
		k := keyOf(c)
		if _, seen := curves[k]; !seen {
			order = append(order, k)
		}
		curves[k] = append(curves[k], c)
	}
	for _, k := range order {
		cs := curves[k]
		sort.Slice(cs, func(i, j int) bool { return xOf(cs[i]) < xOf(cs[j]) })
		xs := make([]float64, len(cs))
		ys := make([]float64, len(cs))
		for i, c := range cs {
			xs[i], ys[i] = xOf(c), yOf(c)
		}
		if i := KneeIndex(xs, ys); i >= 0 {
			emit(cs[0], xs[i], ys[i])
		}
	}
}
