package satbench

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
)

func TestKneeIndexConcaveCurve(t *testing.T) {
	// A classic saturating speedup curve: rises steeply, then plateaus.
	// The knee is where the plateau starts.
	xs := []float64{1, 2, 4, 8, 16}
	ys := []float64{1.0, 1.9, 3.4, 3.7, 3.8}
	i := KneeIndex(xs, ys)
	if i != 2 {
		t.Fatalf("knee at index %d, want 2 (x=4, the plateau start)", i)
	}
}

func TestKneeIndexNoKnee(t *testing.T) {
	cases := []struct {
		name string
		xs   []float64
		ys   []float64
	}{
		{"linear", []float64{1, 2, 3, 4}, []float64{1, 2, 3, 4}},
		{"convex", []float64{1, 2, 3, 4}, []float64{1, 1.1, 1.5, 4}},
		{"degrading", []float64{1, 2, 4, 8}, []float64{1.0, 0.95, 0.9, 0.88}},
		{"flat", []float64{1, 2, 3, 4}, []float64{2, 2, 2, 2}},
		{"too-short", []float64{1, 2}, []float64{1, 5}},
		{"mismatched", []float64{1, 2, 3}, []float64{1, 2}},
		{"zero-x-extent", []float64{1, 1, 1}, []float64{1, 2, 3}},
	}
	for _, tc := range cases {
		if i := KneeIndex(tc.xs, tc.ys); i != -1 {
			t.Errorf("%s: found spurious knee at index %d", tc.name, i)
		}
	}
	// A degrading curve is the honest one-core-host shape for speedup vs
	// chips; the case above pins that it yields "no knee", not a fake one.
}

func TestKneeIndexTieBreaksEarliest(t *testing.T) {
	// Two interior points equally far above the chord (the chord runs
	// flat from 0 to 0, so both interior distances are 1): earliest wins.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{0, 2, 2, 0}
	if i := KneeIndex(xs, ys); i != 1 {
		t.Fatalf("tie should break to the earliest index, got %d", i)
	}
}

// sweepCells builds a plausible 3x2x3 grid: speedup grows with chips and
// saturates (knee at 4 chips), seq cost grows with intensity and
// saturates (knee at 0.4).
func sweepCells() []Cell {
	var cells []Cell
	costAt := map[float64]float64{0.1: 100, 0.4: 170, 0.7: 180}
	gain := map[int]float64{1: 1.0, 2: 1.8, 4: 3.0, 8: 3.2}
	for _, cores := range []int{1, 2} {
		for _, intensity := range []float64{0.1, 0.4, 0.7} {
			for _, chips := range []int{1, 2, 4, 8} {
				seq := costAt[intensity] * float64(cores)
				cells = append(cells, Cell{
					Chips:        chips,
					CoresPerChip: cores,
					Intensity:    intensity,
					SeqNsPerRef:  seq,
					ParNsPerRef:  seq / gain[chips],
				})
			}
		}
	}
	return cells
}

func TestBuildReportFindsBothKneeFamilies(t *testing.T) {
	r, err := BuildReport("test", Host{Cores: 8, GoMaxProcs: 8}, sweepCells())
	if err != nil {
		t.Fatal(err)
	}
	var chipK, intenK int
	for _, k := range r.Knees {
		switch k.Axis {
		case AxisChips:
			chipK++
			if k.At != 4 {
				t.Errorf("parallel knee at %v chips, want 4 (cores=%d intensity=%v)", k.At, k.CoresPerChip, k.Intensity)
			}
			if k.Value < 2.9 || k.Value > 3.1 {
				t.Errorf("parallel knee value %v, want ~3.0", k.Value)
			}
		case AxisIntensity:
			intenK++
			if k.At != 0.4 {
				t.Errorf("cost knee at intensity %v, want 0.4 (chips=%d)", k.At, k.Chips)
			}
		default:
			t.Errorf("unknown axis %q", k.Axis)
		}
	}
	// 2 cores x 3 intensities speedup curves; 2 cores x 4 chip counts
	// cost curves.
	if chipK != 6 || intenK != 8 {
		t.Fatalf("got %d chips-axis and %d intensity-axis knees, want 6 and 8", chipK, intenK)
	}
}

func TestBuildReportDeterministicUnderShuffle(t *testing.T) {
	cells := sweepCells()
	ref, err := BuildReport("n", Host{Cores: 1, GoMaxProcs: 1}, cells)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		shuffled := make([]Cell, len(cells))
		copy(shuffled, cells)
		rng.Shuffle(len(shuffled), func(i, j int) { shuffled[i], shuffled[j] = shuffled[j], shuffled[i] })
		got, err := BuildReport("n", Host{Cores: 1, GoMaxProcs: 1}, shuffled)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(ref, got) {
			t.Fatalf("trial %d: report differs under input shuffle", trial)
		}
	}
}

func TestBuildReportRejectsBadCells(t *testing.T) {
	bad := []Cell{{Chips: 0, CoresPerChip: 1, Intensity: 0.5, SeqNsPerRef: 1, ParNsPerRef: 1}}
	if _, err := BuildReport("", Host{}, bad); err == nil {
		t.Error("zero chips should be rejected")
	}
	dup := sweepCells()
	dup = append(dup, dup[0])
	if _, err := BuildReport("", Host{}, dup); err == nil {
		t.Error("duplicate cells should be rejected")
	}
	neg := []Cell{{Chips: 1, CoresPerChip: 1, Intensity: 0.5, SeqNsPerRef: -3, ParNsPerRef: 1}}
	if _, err := BuildReport("", Host{}, neg); err == nil {
		t.Error("negative timing should be rejected")
	}
}

func TestReportJSONRoundTrip(t *testing.T) {
	r, err := BuildReport("note", Host{Cores: 4, GoMaxProcs: 4}, sweepCells())
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r, back) {
		t.Fatal("report does not survive a JSON round trip")
	}
	blob2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatal("re-marshaled report differs byte-wise")
	}
}

func TestCellSpeedup(t *testing.T) {
	if s := (Cell{SeqNsPerRef: 300, ParNsPerRef: 100}).Speedup(); s != 3 {
		t.Errorf("speedup = %v, want 3", s)
	}
	if s := (Cell{SeqNsPerRef: 300}).Speedup(); s != 0 {
		t.Errorf("unmeasured parallel side should yield 0, got %v", s)
	}
}
