package stats

import (
	"strings"
	"testing"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("alpha", "1")
	tb.AddRowf("beta", 2.5)
	tb.AddRowf("gamma", 42)
	out := tb.String()
	if !strings.Contains(out, "== Demo ==") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "2.500") {
		t.Error("float formatting missing")
	}
	if !strings.Contains(out, "42") {
		t.Error("int row missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, header, separator, 3 rows
		t.Errorf("got %d lines, want 6:\n%s", len(lines), out)
	}
	// Column alignment: 'value' column starts at the same offset in header
	// and data rows.
	hdr := lines[1]
	row := lines[3]
	if strings.Index(hdr, "value") != strings.Index(row, "1") {
		t.Errorf("columns misaligned:\n%s", out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tb := NewTable("", "a")
	tb.AddRow("x")
	if strings.Contains(tb.String(), "==") {
		t.Error("untitled table should not render a title banner")
	}
}

func TestTableMarkdown(t *testing.T) {
	tb := NewTable("Demo", "name", "value")
	tb.AddRow("a|b", "1")
	md := tb.Markdown()
	if !strings.Contains(md, "### Demo") {
		t.Error("markdown title missing")
	}
	if !strings.Contains(md, "| name | value |") {
		t.Errorf("markdown header wrong:\n%s", md)
	}
	if !strings.Contains(md, "| --- | --- |") {
		t.Error("markdown separator missing")
	}
	if !strings.Contains(md, `a\|b`) {
		t.Error("pipe escaping missing")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Label = "overhead"
	s.Add(2, 0.01)
	s.Add(10, 0.05)
	out := s.String()
	if !strings.Contains(out, "overhead:") || !strings.Contains(out, "(2, 0.01)") {
		t.Errorf("series rendering wrong: %s", out)
	}
	if len(s.Points) != 2 {
		t.Errorf("points = %d, want 2", len(s.Points))
	}
}

func TestGrayCellRange(t *testing.T) {
	if GrayCell(0) != ' ' {
		t.Errorf("GrayCell(0) = %q, want space", GrayCell(0))
	}
	if GrayCell(255) != '@' {
		t.Errorf("GrayCell(255) = %q, want '@'", GrayCell(255))
	}
	// Monotone non-decreasing density.
	ramp := " .:-=+*#%@"
	prev := 0
	for v := 0; v <= 255; v++ {
		idx := strings.IndexByte(ramp, GrayCell(uint8(v)))
		if idx < prev {
			t.Fatalf("gray ramp not monotone at %d", v)
		}
		prev = idx
	}
}

func TestHeatmap(t *testing.T) {
	rows := [][]uint8{{0, 128, 255}, {255, 0, 0}}
	out := Heatmap(rows, []string{"t0", "t1"})
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("heatmap lines = %d, want 2", len(lines))
	}
	if !strings.HasPrefix(lines[0], "t0 ") && !strings.HasPrefix(lines[0], "t0|") {
		t.Errorf("label missing: %q", lines[0])
	}
	if !strings.Contains(lines[0], "@") {
		t.Error("saturated cell should render dark")
	}
	// No labels is fine too.
	out = Heatmap(rows, nil)
	if len(strings.Split(strings.TrimSpace(out), "\n")) != 2 {
		t.Error("unlabelled heatmap broken")
	}
}

func TestPctAndRatio(t *testing.T) {
	if Pct(0.123) != "12.3%" {
		t.Errorf("Pct = %s", Pct(0.123))
	}
	if Ratio(1, 0) != 0 {
		t.Error("Ratio should guard division by zero")
	}
	if Ratio(3, 2) != 1.5 {
		t.Error("Ratio arithmetic wrong")
	}
}
