// Package stats provides the small reporting toolkit the experiment
// harnesses use: aligned text tables for the paper's tables and bar
// figures, series for parameter sweeps, and an ASCII gray-scale heat map
// for the Figure 5 shMap visualization.
package stats

import (
	"fmt"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; cells beyond the header count are kept as-is.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddRowf appends a row of formatted values: each argument is rendered
// with %v, floats with 3 decimals.
func (t *Table) AddRowf(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case float32:
			row[i] = fmt.Sprintf("%.3f", v)
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.AddRow(row...)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "== %s ==\n", t.Title)
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			w := len(c)
			if i < len(widths) {
				w = widths[i]
			}
			fmt.Fprintf(&sb, "%-*s", w, c)
			if i < len(cells)-1 {
				sb.WriteString("  ")
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Markdown renders the table as GitHub-flavored Markdown.
func (t *Table) Markdown() string {
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "### %s\n\n", t.Title)
	}
	writeRow := func(cells []string) {
		sb.WriteString("|")
		for _, c := range cells {
			sb.WriteString(" ")
			sb.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			sb.WriteString(" |")
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = "---"
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return sb.String()
}

// Point is one (x, y) sample of a sweep.
type Point struct {
	X float64
	Y float64
}

// Series is a labelled sweep result (one line of a figure).
type Series struct {
	Label  string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{X: x, Y: y}) }

// String renders the series as "label: (x,y) (x,y) ...".
func (s *Series) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s:", s.Label)
	for _, p := range s.Points {
		fmt.Fprintf(&sb, " (%g, %.4g)", p.X, p.Y)
	}
	return sb.String()
}

// grayRamp maps intensity 0..255 to ASCII density, darkest last, matching
// Figure 5's "more frequently accessed entries appear darker".
const grayRamp = " .:-=+*#%@"

// GrayCell renders one 0..255 intensity as a single character.
func GrayCell(v uint8) byte {
	idx := int(v) * (len(grayRamp) - 1) / 255
	return grayRamp[idx]
}

// Heatmap renders rows of 0..255 intensities as an ASCII gray-scale
// picture, one text row per data row, with optional per-row labels.
func Heatmap(rows [][]uint8, labels []string) string {
	var sb strings.Builder
	labelW := 0
	for _, l := range labels {
		if len(l) > labelW {
			labelW = len(l)
		}
	}
	for i, row := range rows {
		if labels != nil && i < len(labels) {
			fmt.Fprintf(&sb, "%-*s |", labelW, labels[i])
		}
		for _, v := range row {
			sb.WriteByte(GrayCell(v))
		}
		sb.WriteString("|\n")
	}
	return sb.String()
}

// Pct formats a ratio as a percentage with one decimal.
func Pct(x float64) string { return fmt.Sprintf("%.1f%%", 100*x) }

// Ratio guards against division by zero.
func Ratio(num, den float64) float64 {
	if den == 0 {
		return 0
	}
	return num / den
}
