package stats

import (
	"image"
	"image/color"
	"image/png"
	"io"
)

// HeatmapPNG renders rows of 0..255 intensities as a PNG image in the
// style of the paper's Figure 5: one pixel row band per shMap vector,
// darker pixels for more frequently accessed entries, and a thin
// separator line between cluster groups. groupSizes gives the number of
// rows in each consecutive group (nil = no separators).
func HeatmapPNG(w io.Writer, rows [][]uint8, groupSizes []int, cellW, cellH int) error {
	if cellW <= 0 {
		cellW = 3
	}
	if cellH <= 0 {
		cellH = 6
	}
	maxLen := 0
	for _, r := range rows {
		if len(r) > maxLen {
			maxLen = len(r)
		}
	}
	const sep = 2
	height := len(rows) * cellH
	for _, g := range groupSizes {
		_ = g
		height += sep
	}
	if height == 0 || maxLen == 0 {
		height = 1
		maxLen = 1
	}
	img := image.NewGray(image.Rect(0, 0, maxLen*cellW, height))
	// White background.
	for i := range img.Pix {
		img.Pix[i] = 0xFF
	}

	groupEnd := -1
	gi := 0
	if len(groupSizes) > 0 {
		groupEnd = groupSizes[0]
	}
	y := 0
	for ri, row := range rows {
		if groupEnd == ri && gi < len(groupSizes) {
			// Separator band.
			for dy := 0; dy < sep; dy++ {
				for x := 0; x < maxLen*cellW; x++ {
					img.SetGray(x, y+dy, color.Gray{Y: 0x80})
				}
			}
			y += sep
			gi++
			if gi < len(groupSizes) {
				groupEnd += groupSizes[gi]
			}
		}
		for ci, v := range row {
			// Darker = hotter (invert intensity).
			g := color.Gray{Y: 255 - v}
			for dy := 0; dy < cellH; dy++ {
				for dx := 0; dx < cellW; dx++ {
					img.SetGray(ci*cellW+dx, y+dy, g)
				}
			}
		}
		y += cellH
	}
	return png.Encode(w, img)
}
