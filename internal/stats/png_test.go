package stats

import (
	"bytes"
	"image/png"
	"testing"
)

func TestHeatmapPNGDimensionsAndShades(t *testing.T) {
	rows := [][]uint8{
		{0, 255, 128},
		{255, 0, 0},
		{10, 10, 10},
	}
	var buf bytes.Buffer
	if err := HeatmapPNG(&buf, rows, []int{2, 1}, 4, 5); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	b := img.Bounds()
	if b.Dx() != 3*4 {
		t.Errorf("width = %d, want 12", b.Dx())
	}
	if b.Dy() < 3*5 {
		t.Errorf("height = %d, want >= 15 (3 rows x 5px)", b.Dy())
	}
	// Intensity 255 renders darkest; intensity 0 lightest.
	dark, _, _, _ := img.At(5, 2).RGBA()  // row 0 col 1: value 255
	light, _, _, _ := img.At(1, 2).RGBA() // row 0 col 0: value 0
	if dark >= light {
		t.Errorf("hot cell (%d) should be darker than cold cell (%d)", dark, light)
	}
}

func TestHeatmapPNGEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := HeatmapPNG(&buf, nil, nil, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := png.Decode(&buf); err != nil {
		t.Fatalf("empty heatmap should still be a valid PNG: %v", err)
	}
}

func TestHeatmapPNGGroupSeparator(t *testing.T) {
	// Two one-row groups of all-cold cells: the separator band between
	// them must contain mid-gray pixels.
	rows := [][]uint8{{0, 0}, {0, 0}}
	var buf bytes.Buffer
	if err := HeatmapPNG(&buf, rows, []int{1, 1}, 2, 4); err != nil {
		t.Fatal(err)
	}
	img, err := png.Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	b := img.Bounds()
	for y := b.Min.Y; y < b.Max.Y && !found; y++ {
		r, _, _, _ := img.At(0, y).RGBA()
		v := r >> 8
		if v > 0x60 && v < 0xA0 {
			found = true
		}
	}
	if !found {
		t.Error("no separator band found between groups")
	}
}
