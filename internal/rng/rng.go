// Package rng provides the simulator's snapshotable random number
// generator. It wraps math/rand with a draw-counting source, so the
// value stream for a given seed is bit-identical to the plain
// rand.New(rand.NewSource(seed)) the simulator has always used, while
// the generator's complete state compresses to sixteen bytes: the seed
// and the number of source draws consumed. Restoring re-seeds and
// fast-forwards, which costs one lagged-Fibonacci step per historical
// draw — nanoseconds each, paid only on the (rare, never hot-path)
// restore.
//
// The counting works because math/rand's rngSource advances exactly one
// step per Int63 or Uint64 call (Int63 is Uint64 masked), so a replay
// of n raw Uint64 draws reproduces the source state no matter which mix
// of Rand methods consumed the originals.
package rng

import "math/rand"

// State is a generator's complete serializable state.
type State struct {
	// Seed is the seed the source was last seeded with.
	Seed int64
	// Draws is the number of source steps consumed since seeding.
	Draws uint64
}

// source counts draws from an underlying math/rand source.
type source struct {
	src  rand.Source64
	seed int64
	n    uint64
}

func (s *source) Int63() int64 {
	s.n++
	return s.src.Int63()
}

func (s *source) Uint64() uint64 {
	s.n++
	return s.src.Uint64()
}

func (s *source) Seed(seed int64) {
	s.seed, s.n = seed, 0
	s.src.Seed(seed)
}

// Rand is a snapshotable *rand.Rand. The embedded Rand provides the full
// method set (Intn, Float64, Int63n, ...); State and Restore capture and
// reinstate the stream position.
type Rand struct {
	*rand.Rand //tclint:allow snapfields -- stateless method façade over src; Restore rebuilds the stream by reseed+replay
	src        *source
}

// New returns a Rand whose value stream for this seed is identical to
// rand.New(rand.NewSource(seed)).
func New(seed int64) *Rand {
	src := &source{src: rand.NewSource(seed).(rand.Source64), seed: seed}
	return &Rand{Rand: rand.New(src), src: src}
}

// State returns the generator's current position.
func (r *Rand) State() State {
	return State{Seed: r.src.seed, Draws: r.src.n}
}

// Restore rewinds or advances the generator to exactly st: it re-seeds
// with st.Seed and replays st.Draws raw source steps. After Restore the
// generator produces the same stream it would have produced had it just
// arrived at that position.
func (r *Rand) Restore(st State) {
	r.src.Seed(st.Seed)
	for i := uint64(0); i < st.Draws; i++ {
		r.src.src.Uint64()
	}
	r.src.n = st.Draws
}
