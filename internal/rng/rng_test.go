package rng

import (
	"math/rand"
	"testing"
)

// TestStreamMatchesMathRand: the whole point of the wrapper is that it
// does not perturb any existing seeded stream in the repository.
func TestStreamMatchesMathRand(t *testing.T) {
	for _, seed := range []int64{1, 42, 7919} {
		a := New(seed)
		b := rand.New(rand.NewSource(seed))
		for i := 0; i < 1000; i++ {
			switch i % 5 {
			case 0:
				if got, want := a.Int63(), b.Int63(); got != want {
					t.Fatalf("seed %d draw %d: Int63 = %d, want %d", seed, i, got, want)
				}
			case 1:
				if got, want := a.Intn(997), b.Intn(997); got != want {
					t.Fatalf("seed %d draw %d: Intn = %d, want %d", seed, i, got, want)
				}
			case 2:
				if got, want := a.Float64(), b.Float64(); got != want {
					t.Fatalf("seed %d draw %d: Float64 = %v, want %v", seed, i, got, want)
				}
			case 3:
				if got, want := a.Uint64(), b.Uint64(); got != want {
					t.Fatalf("seed %d draw %d: Uint64 = %d, want %d", seed, i, got, want)
				}
			case 4:
				if got, want := a.Int63n(1<<40), b.Int63n(1<<40); got != want {
					t.Fatalf("seed %d draw %d: Int63n = %d, want %d", seed, i, got, want)
				}
			}
		}
	}
}

// TestStateRestore: capture mid-stream, keep drawing, restore into a
// fresh generator, and require the continuations to agree exactly.
func TestStateRestore(t *testing.T) {
	r := New(99)
	for i := 0; i < 12345; i++ {
		r.Float64()
	}
	st := r.State()

	var want []uint64
	for i := 0; i < 500; i++ {
		want = append(want, r.Uint64())
	}

	fresh := New(0)
	fresh.Restore(st)
	if got := fresh.State(); got != st {
		t.Fatalf("State after Restore = %+v, want %+v", got, st)
	}
	for i, w := range want {
		if got := fresh.Uint64(); got != w {
			t.Fatalf("draw %d after restore = %d, want %d", i, got, w)
		}
	}
}

// TestStateCountsMixedMethods: the draw counter must advance identically
// whether values come from Int63, Uint64 or the rejection-sampling
// helpers, because replay uses raw Uint64 steps.
func TestStateCountsMixedMethods(t *testing.T) {
	a := New(7)
	a.Intn(10)
	a.Float64()
	a.Int63n(3) // may reject internally; every rejection is one draw
	a.Uint64()
	st := a.State()

	b := New(7)
	b.Restore(st)
	for i := 0; i < 100; i++ {
		if got, want := b.Int63(), a.Int63(); got != want {
			t.Fatalf("draw %d: %d != %d", i, got, want)
		}
	}
}
