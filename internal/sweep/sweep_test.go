package sweep

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"testing"

	"threadcluster/internal/metrics"
)

// fakeTask deterministically derives a snapshot from its seed.
func fakeTask(name string, seed int64) Task {
	return Task{
		Name: name,
		Seed: seed,
		Run: func(_ context.Context, s int64) (metrics.Snapshot, error) {
			r := metrics.NewRegistry()
			r.Counter("seen", nil).Add(uint64(s))
			return r.Snapshot(), nil
		},
	}
}

func TestDeriveSeedStableAndDistinct(t *testing.T) {
	seen := make(map[int64]int)
	for i := 0; i < 100; i++ {
		s := DeriveSeed(1, i)
		if s < 0 {
			t.Fatalf("DeriveSeed(1,%d) = %d, want non-negative", i, s)
		}
		if prev, dup := seen[s]; dup {
			t.Fatalf("seed collision: index %d and %d both -> %d", prev, i, s)
		}
		seen[s] = i
		if again := DeriveSeed(1, i); again != s {
			t.Fatalf("DeriveSeed not stable at index %d: %d != %d", i, s, again)
		}
	}
	if DeriveSeed(1, 0) == DeriveSeed(2, 0) {
		t.Error("different bases should derive different seeds")
	}
}

// TestRunDeterministicAcrossWorkerCounts is the core contract: the same
// tasks produce byte-identical serialized results for any pool size.
func TestRunDeterministicAcrossWorkerCounts(t *testing.T) {
	mkTasks := func() []Task {
		var tasks []Task
		for i := 0; i < 16; i++ {
			tasks = append(tasks, fakeTask(fmt.Sprintf("t%d", i), DeriveSeed(7, i)))
		}
		return tasks
	}
	serialize := func(results []Result) []byte {
		var b bytes.Buffer
		for _, r := range results {
			fmt.Fprintf(&b, "%s %d\n", r.Name, r.Seed)
			if err := r.Metrics.WriteJSON(&b); err != nil {
				t.Fatal(err)
			}
		}
		return b.Bytes()
	}
	ref, err := Run(context.Background(), mkTasks(), 1)
	if err != nil {
		t.Fatal(err)
	}
	refBytes := serialize(ref)
	for _, workers := range []int{2, 4, 8} {
		got, err := Run(context.Background(), mkTasks(), workers)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(refBytes, serialize(got)) {
			t.Errorf("workers=%d results differ from workers=1", workers)
		}
	}
}

func TestRunResultsInTaskOrder(t *testing.T) {
	var tasks []Task
	for i := 0; i < 20; i++ {
		tasks = append(tasks, fakeTask(fmt.Sprintf("t%d", i), int64(i)))
	}
	results, err := Run(context.Background(), tasks, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(tasks) {
		t.Fatalf("got %d results, want %d", len(results), len(tasks))
	}
	for i, r := range results {
		if r.Name != tasks[i].Name || r.Seed != tasks[i].Seed {
			t.Errorf("result %d = %s/%d, want %s/%d", i, r.Name, r.Seed, tasks[i].Name, tasks[i].Seed)
		}
	}
}

func TestMapOrderAndValues(t *testing.T) {
	out, err := Map(context.Background(), 50, 8, func(_ context.Context, i int) (int, error) {
		return i * i, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Errorf("out[%d] = %d, want %d", i, v, i*i)
		}
	}
}

func TestEachErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	err := Each(context.Background(), 20, 4, func(_ context.Context, i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want %v", err, boom)
	}
}

func TestEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Each(ctx, 10, 2, func(ctx context.Context, i int) error {
		return ctx.Err()
	})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}

func TestRunTaskErrorRecorded(t *testing.T) {
	boom := errors.New("boom")
	tasks := []Task{
		fakeTask("ok", 1),
		{Name: "bad", Seed: 2, Run: func(context.Context, int64) (metrics.Snapshot, error) {
			return metrics.Snapshot{}, boom
		}},
	}
	results, err := Run(context.Background(), tasks, 2)
	if !errors.Is(err, boom) {
		t.Fatalf("Run err = %v, want %v", err, boom)
	}
	if results[0].Err != nil {
		t.Errorf("task ok: unexpected error %v", results[0].Err)
	}
	if !errors.Is(results[1].Err, boom) {
		t.Errorf("task bad: err = %v, want %v", results[1].Err, boom)
	}
}

func TestMerged(t *testing.T) {
	tasks := []Task{fakeTask("a", 3), fakeTask("b", 4)}
	results, err := Run(context.Background(), tasks, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := Merged(results)
	if got := m.Counter("seen", nil); got != 7 {
		t.Errorf("merged seen = %d, want 7", got)
	}
}

func TestWorkers(t *testing.T) {
	if Workers(3) != 3 {
		t.Error("explicit worker count should pass through")
	}
	if Workers(0) < 1 {
		t.Error("Workers(0) should resolve to at least 1")
	}
}

func TestScatter(t *testing.T) {
	mk := func(name string) Result { return Result{Name: name} }
	dst := make([]Result, 4)
	if err := Scatter(dst, []int{1, 3}, []Result{mk("b"), mk("d")}); err != nil {
		t.Fatalf("Scatter: %v", err)
	}
	want := []string{"", "b", "", "d"}
	for i, w := range want {
		if dst[i].Name != w {
			t.Errorf("dst[%d].Name = %q, want %q", i, dst[i].Name, w)
		}
	}
	if err := Scatter(dst, []int{0}, nil); err == nil {
		t.Error("length mismatch accepted")
	}
	if err := Scatter(dst, []int{4}, []Result{mk("x")}); err == nil {
		t.Error("out-of-range index accepted")
	}
	if err := Scatter(dst, []int{-1}, []Result{mk("x")}); err == nil {
		t.Error("negative index accepted")
	}
}
