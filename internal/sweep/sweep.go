// Package sweep runs N independent simulation configurations across a
// bounded worker pool. Each task builds and drives its own sim.Machine,
// so runs share no mutable state and the per-task results — including
// their metrics snapshots — are byte-identical whether the sweep runs on
// one worker or on GOMAXPROCS workers; only wall-clock changes. That
// property is what lets experiment suites and the `tcsim sweep`
// subcommand parallelize freely without giving up reproducibility.
//
// Determinism contract: a task's seed is derived from the sweep's base
// seed and the task's index (DeriveSeed), never from time, goroutine
// identity or completion order; results are returned in task order.
package sweep

import (
	"context"
	"fmt"
	"runtime"
	"sync"

	"threadcluster/internal/metrics"
)

// Task is one independent run of a sweep.
type Task struct {
	// Name identifies the configuration ("volano/clustered/open720").
	Name string
	// Seed is the run's deterministic seed (see DeriveSeed).
	Seed int64
	// Run executes the configuration and returns its metrics snapshot.
	// It must build its own machine: tasks share nothing.
	Run func(ctx context.Context, seed int64) (metrics.Snapshot, error)
}

// Result is one task's outcome.
type Result struct {
	// Name and Seed echo the task.
	Name string
	Seed int64
	// Metrics is the run's snapshot (zero when Err is set).
	Metrics metrics.Snapshot
	// Err is the task's failure, if any.
	Err error
}

// DeriveSeed maps (base seed, task index) to a per-run seed with a
// SplitMix64 finalizer, so adjacent runs do not feed nearly identical
// seeds into the simulators' linear generators. Deterministic by
// construction: the schedule of workers never enters into it.
func DeriveSeed(base int64, index int) int64 {
	z := uint64(base) + uint64(index)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	// Keep seeds positive: rand.NewSource is symmetric in sign but
	// positive values read better in reports.
	return int64(z &^ (1 << 63))
}

// Workers resolves a worker-count request: n > 0 is used as given,
// anything else means GOMAXPROCS.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Run executes every task on a pool of workers (Workers(workers)) and
// returns the results in task order. A task failure is recorded in its
// Result; the first failure also cancels the remaining unstarted tasks,
// whose Err becomes the cancellation. Run itself returns the first
// task's error for convenience, or ctx's error if the caller cancelled.
func Run(ctx context.Context, tasks []Task, workers int) ([]Result, error) {
	results := make([]Result, len(tasks))
	err := Each(ctx, len(tasks), workers, func(ctx context.Context, i int) error {
		t := tasks[i]
		results[i] = Result{Name: t.Name, Seed: t.Seed}
		snap, err := t.Run(ctx, t.Seed)
		if err != nil {
			results[i].Err = fmt.Errorf("sweep: task %s: %w", t.Name, err)
			return results[i].Err
		}
		results[i].Metrics = snap
		return nil
	})
	return results, err
}

// Scatter copies a subset run's results into their positions in a
// full-length result slice: sub[i] lands at dst[indices[i]]. It is the
// merge half of grid sharding — a coordinator that farmed out disjoint
// index subsets reassembles the full grid-ordered result slice with one
// Scatter per shard, after which Merged and any payload builder see
// exactly what a single-node run would have produced.
func Scatter(dst []Result, indices []int, sub []Result) error {
	if len(indices) != len(sub) {
		return fmt.Errorf("sweep: scatter: %d indices for %d results", len(indices), len(sub))
	}
	for i, idx := range indices {
		if idx < 0 || idx >= len(dst) {
			return fmt.Errorf("sweep: scatter: index %d outside %d results", idx, len(dst))
		}
		dst[idx] = sub[i]
	}
	return nil
}

// Merged folds the successful results' snapshots into one machine-wide
// view (counters add; see metrics.Snapshot.Merge).
func Merged(results []Result) metrics.Snapshot {
	snaps := make([]metrics.Snapshot, 0, len(results))
	for _, r := range results {
		if r.Err == nil {
			snaps = append(snaps, r.Metrics)
		}
	}
	return metrics.MergeAll(snaps)
}

// Map runs fn for indices [0, n) on a bounded worker pool and returns
// the collected values in index order. The first error cancels the pool
// (in-flight calls finish; unstarted indices are skipped) and is
// returned. Workers(workers) resolves the pool size.
func Map[T any](ctx context.Context, n, workers int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := Each(ctx, n, workers, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Each runs fn for indices [0, n) on a bounded worker pool. The first
// error cancels remaining unstarted indices and is returned (earliest
// index wins when several fail).
func Each(ctx context.Context, n, workers int, fn func(ctx context.Context, i int) error) error {
	if n == 0 {
		return ctx.Err()
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	errs := make([]error, n)
	var next int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				mu.Lock()
				i := next
				next++
				mu.Unlock()
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				if err := fn(ctx, i); err != nil {
					errs[i] = err
					cancel()
				}
			}
		}()
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
