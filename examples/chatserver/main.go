// Chatserver: the VolanoMark scenario of Section 5.3.2. An instant
// messaging server runs two designated threads per client connection;
// connections belong to chat rooms; threads of a room share the room's
// message board intensively. This example compares all four thread
// placement strategies of Section 5.4 on that workload and shows what the
// automatic engine detected.
package main

import (
	"context"
	"fmt"
	"log"

	"threadcluster/internal/experiments"
	"threadcluster/internal/sched"
	"threadcluster/internal/stats"
)

func main() {
	opt := experiments.DefaultOptions()

	fmt.Println("VolanoMark-like chat server: 2 rooms x 8 connections x 2 threads = 32 threads")
	fmt.Println()

	table := stats.NewTable("Placement strategy comparison",
		"Policy", "Remote stalls (% of cycles)", "Throughput (msgs/Mcycle)")
	var def experiments.RunMetrics
	for _, pol := range []sched.Policy{
		sched.PolicyDefault, sched.PolicyRoundRobin,
		sched.PolicyHandOptimized, sched.PolicyClustered,
	} {
		res, _, err := experiments.RunWorkload(context.Background(), experiments.Volano, pol, pol == sched.PolicyClustered, opt)
		if err != nil {
			log.Fatal(err)
		}
		if pol == sched.PolicyDefault {
			def = res
		}
		table.AddRow(pol.String(), stats.Pct(res.RemoteFraction), fmt.Sprintf("%.1f", res.OpsPerMCycle))
		if res.Engine != nil {
			defer func(e experiments.EngineStats) {
				fmt.Printf("engine: %d activations, %d migrations, %d clusters, %d/%d samples admitted\n",
					e.Activations, e.Migrations, e.Clusters, e.SamplesAdmitted, e.SamplesRead)
			}(*res.Engine)
		}
	}
	fmt.Println(table)
	fmt.Printf("default-policy remote share: %s — the cross-chip traffic the paper's Figure 3 shows\n\n",
		stats.Pct(def.RemoteFraction))
}
