// Quickstart: build the simulated 8-way Power5 machine, run the synthetic
// scoreboard microbenchmark, attach the thread-clustering engine, and
// watch it find the sharing clusters and cut remote-access stalls.
package main

import (
	"context"
	"fmt"
	"log"

	"threadcluster/internal/core"
	"threadcluster/internal/experiments"
	"threadcluster/internal/memory"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/workloads"
)

func main() {
	// 1. The machine: 2 chips x 2 cores x 2 SMT contexts, Table 1 caches,
	//    Figure 1 latencies.
	// Round-robin placement is the paper's engineered worst case: it
	// scatters every sharing group across the chips, which is exactly
	// what the engine must detect and undo.
	mcfg := sim.DefaultConfig()
	mcfg.Policy = sched.PolicyRoundRobin
	machine, err := sim.NewMachine(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("machine:", machine.Topology())

	// 2. The workload: 4 scoreboards, 4 threads each, every thread mixing
	//    a large private working set with reads/writes of its scoreboard.
	arena := memory.NewDefaultArena()
	spec, err := workloads.NewSynthetic(arena, workloads.DefaultSyntheticConfig())
	if err != nil {
		log.Fatal(err)
	}
	if err := spec.Install(machine); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("workload: %s, %d threads over %d scoreboards\n\n",
		spec.Name, len(spec.Threads), spec.NumPartitions)

	// 3. Baseline interval: no engine yet.
	machine.RunRoundsCtx(context.Background(), 300)
	machine.ResetMetrics()
	machine.RunRoundsCtx(context.Background(), 300)
	before := machine.Breakdown()
	fmt.Printf("before clustering: remote-access stalls = %s of cycles, IPC = %.3f\n",
		stats.Pct(before.RemoteFraction()), 1/before.CPI())

	// 4. Attach the paper's engine: monitor -> detect -> cluster ->
	//    migrate, iteratively.
	engine, err := core.New(machine, experiments.ScaledEngineConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Install(); err != nil {
		log.Fatal(err)
	}
	machine.RunRoundsCtx(context.Background(), 2600) // let it activate, sample, cluster, migrate

	// 5. Measure again.
	machine.ResetMetrics()
	machine.RunRoundsCtx(context.Background(), 300)
	after := machine.Breakdown()
	fmt.Printf("after  clustering: remote-access stalls = %s of cycles, IPC = %.3f\n",
		stats.Pct(after.RemoteFraction()), 1/after.CPI())
	fmt.Printf("\nengine: %d activation(s), %d migration(s), %d cluster(s) detected\n",
		engine.Activations(), engine.MigrationsDone(), len(engine.Clusters()))
	for i, c := range engine.Clusters() {
		if c.Size() < 2 {
			continue
		}
		fmt.Printf("  cluster %d: threads %v\n", i, c.Members)
	}
	reduction := 1 - stats.Ratio(float64(after.RemoteStalls()), float64(before.RemoteStalls()))
	fmt.Printf("\nremote-stall reduction: %s (the paper reports up to 70%%)\n", stats.Pct(reduction))
}
