// Numanode: the Section 8 NUMA extension. A four-chip machine with
// per-chip memory controllers runs four warehouse groups whose data is
// bound to specific nodes. The base engine co-locates each group's
// threads but does not know where their memory lives; the NUMA-aware
// engine also samples remote-memory misses and places each cluster on the
// chip that homes its data.
package main

import (
	"context"
	"fmt"
	"log"

	"threadcluster/internal/experiments"
)

func main() {
	fmt.Println("Section 8 NUMA extension: 4 chips, per-chip memory, node-bound warehouses")
	fmt.Println("(warehouse-to-node homes deliberately reversed so NUMA-blind placement misses)")
	fmt.Println()
	res, table, err := experiments.NUMA(context.Background(), experiments.DefaultOptions())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(table)
	gain := 0.0
	if res.Clustered.OpsPerMCycle > 0 {
		gain = res.NUMAEngine.OpsPerMCycle/res.Clustered.OpsPerMCycle - 1
	}
	fmt.Printf("NUMA-aware placement beats NUMA-blind clustering by %+.1f%% throughput:\n", 100*gain)
	fmt.Println("both fix remote-cache sharing, but only the extension keeps threads next")
	fmt.Println("to their memory, eliminating the remote-memory stalls the blind engine")
	fmt.Println("accidentally inflates.")
}
