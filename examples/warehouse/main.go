// Warehouse: the SPECjbb2000 scenario of Section 5.3.3. Warehouses are
// stored as B-trees in the simulated address space; a fixed set of
// threads runs transactions against each warehouse. This example shows
// the B-tree substrate, the stall breakdown that triggers the engine, and
// the engine's detected warehouse clusters.
package main

import (
	"context"
	"fmt"
	"log"

	"threadcluster/internal/core"
	"threadcluster/internal/experiments"
	"threadcluster/internal/memory"
	"threadcluster/internal/pmu"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
	"threadcluster/internal/workloads"
)

func main() {
	// Show the substrate first: a real B-tree over simulated memory.
	arena := memory.NewDefaultArena()
	tree, err := workloads.NewBTree(arena)
	if err != nil {
		log.Fatal(err)
	}
	for k := uint64(1); k <= 3000; k++ {
		if _, err := tree.Insert(k * 7919 % 100003); err != nil {
			log.Fatal(err)
		}
	}
	if err := tree.CheckInvariants(); err != nil {
		log.Fatal(err)
	}
	_, trace := tree.Lookup(4242)
	fmt.Printf("warehouse B-tree: %d keys, %d nodes, height %d; one lookup touches %d lines\n\n",
		tree.Size(), tree.Nodes(), tree.Height(), len(trace))

	// Now the full scenario: 2 warehouses x 8 threads under the engine.
	spec, err := experiments.BuildWorkload(experiments.JBB, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := sim.DefaultConfig()
	mcfg.Policy = sched.PolicyClustered
	machine, err := sim.NewMachine(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := spec.Install(machine); err != nil {
		log.Fatal(err)
	}
	engine, err := core.New(machine, experiments.ScaledEngineConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Install(); err != nil {
		log.Fatal(err)
	}

	machine.RunRoundsCtx(context.Background(), 200)
	machine.ResetMetrics()
	machine.RunRoundsCtx(context.Background(), 300)
	before := machine.Breakdown()
	fmt.Println("stall breakdown before clustering (the Figure 3 view):")
	fmt.Printf("  completion %s, dcache-remote %s, dcache-local %s, memory %s\n\n",
		stats.Pct(stats.Ratio(float64(before.Completion), float64(before.Cycles))),
		stats.Pct(before.RemoteFraction()),
		stats.Pct(before.Fraction(pmu.EvStallL2)+before.Fraction(pmu.EvStallL3)),
		stats.Pct(before.Fraction(pmu.EvStallMemory)))

	machine.RunRoundsCtx(context.Background(), 2600)
	machine.ResetMetrics()
	machine.RunRoundsCtx(context.Background(), 300)
	after := machine.Breakdown()

	fmt.Printf("engine detected %d cluster(s) after %d activation(s):\n",
		len(engine.Clusters()), engine.Activations())
	truth := spec.Truth()
	for i, c := range engine.Clusters() {
		if c.Size() < 2 {
			continue
		}
		warehouses := map[int]int{}
		for _, t := range c.Members {
			warehouses[truth[int(t)]]++
		}
		fmt.Printf("  cluster %d: %d threads, warehouse histogram %v\n", i, c.Size(), warehouses)
	}
	fmt.Printf("\nremote stalls: %s -> %s of cycles\n",
		stats.Pct(before.RemoteFraction()), stats.Pct(after.RemoteFraction()))
}
