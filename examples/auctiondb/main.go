// Auctiondb: the RUBiS scenario of Section 5.3.4. One database server
// process hosts two independent auction-site instances ("two separate
// auction sites run by a single large media company"); each client
// connection is served by a long-lived thread. The clustering engine must
// discover the instance boundary from PMU samples alone and split the
// instances across the chips.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"

	"threadcluster/internal/core"
	"threadcluster/internal/experiments"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/stats"
)

func main() {
	spec, err := experiments.BuildWorkload(experiments.Rubis, 1)
	if err != nil {
		log.Fatal(err)
	}
	mcfg := sim.DefaultConfig()
	mcfg.Policy = sched.PolicyClustered
	machine, err := sim.NewMachine(mcfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := spec.Install(machine); err != nil {
		log.Fatal(err)
	}
	engine, err := core.New(machine, experiments.ScaledEngineConfig(1))
	if err != nil {
		log.Fatal(err)
	}
	if err := engine.Install(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("auction database: %d instances, %d connection threads\n\n",
		spec.NumPartitions, len(spec.Threads))

	machine.RunRoundsCtx(context.Background(), 200)
	machine.ResetMetrics()
	machine.RunRoundsCtx(context.Background(), 300)
	before := machine.Breakdown()
	opsBefore := machine.TotalOps()

	machine.RunRoundsCtx(context.Background(), 2600) // engine detects, clusters, migrates
	machine.ResetMetrics()
	machine.RunRoundsCtx(context.Background(), 300)
	after := machine.Breakdown()
	opsAfter := machine.TotalOps()

	fmt.Printf("remote-access stalls: %s -> %s of cycles\n",
		stats.Pct(before.RemoteFraction()), stats.Pct(after.RemoteFraction()))
	fmt.Printf("transactions per interval: %d -> %d (%+.1f%%)\n\n",
		opsBefore, opsAfter, 100*(stats.Ratio(float64(opsAfter), float64(opsBefore))-1))

	// Where did the threads end up? Each instance should own a chip.
	truth := spec.Truth()
	s := machine.Scheduler()
	byChip := map[int]map[int]int{}
	for _, th := range spec.Threads {
		chip, ok := s.ChipOf(th.ID)
		if !ok {
			continue
		}
		if byChip[chip] == nil {
			byChip[chip] = map[int]int{}
		}
		byChip[chip][truth[int(th.ID)]]++
	}
	chips := make([]int, 0, len(byChip))
	for c := range byChip {
		chips = append(chips, c)
	}
	sort.Ints(chips)
	fmt.Println("final placement (threads per database instance on each chip):")
	for _, c := range chips {
		fmt.Printf("  chip %d: instance histogram %v\n", c, byChip[c])
	}
	fmt.Printf("\nengine: %d activations, %d migrations, %d/%d samples admitted\n",
		engine.Activations(), engine.MigrationsDone(), engine.SamplesAdmitted(), engine.SamplesRead())
}
