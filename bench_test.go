// Benchmarks that regenerate every table and figure of the paper's
// evaluation. Each benchmark runs the corresponding harness from
// internal/experiments and reports the headline quantity of that figure
// as a custom metric, so `go test -bench=. -benchmem` reproduces the
// whole evaluation. The same harnesses print the full rows via
// `go run ./cmd/tcsim -exp all`.
package threadcluster_test

import (
	"context"
	"testing"

	"threadcluster/internal/experiments"
	"threadcluster/internal/sched"
)

// benchOptions trims the run lengths: benchmarks regenerate the figures,
// the correctness tests in internal/experiments assert the shapes.
func benchOptions() experiments.Options {
	opt := experiments.DefaultOptions()
	opt.WarmRounds = 100
	opt.EngineRounds = 2000
	opt.MeasureRounds = 200
	return opt
}

// BenchmarkTable1Topology regenerates Table 1 (machine specification).
func BenchmarkTable1Topology(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if experiments.Table1().String() == "" {
			b.Fatal("empty table")
		}
	}
}

// BenchmarkFigure1Latencies regenerates Figure 1 (latency ladder).
func BenchmarkFigure1Latencies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(benchOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure3StallBreakdown regenerates Figure 3 (VolanoMark CPI
// stack) and reports the remote-access share of cycles.
func BenchmarkFigure3StallBreakdown(b *testing.B) {
	var remote float64
	for i := 0; i < b.N; i++ {
		_, bd, err := experiments.Figure3(context.Background(), experiments.Volano, benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		remote = bd.RemoteFraction()
	}
	b.ReportMetric(100*remote, "remote-stall-%")
}

// BenchmarkFigure5ShMaps regenerates Figure 5 (shMap visualizations for
// all four workloads) and reports mean cluster purity.
func BenchmarkFigure5ShMaps(b *testing.B) {
	var purity float64
	for i := 0; i < b.N; i++ {
		results, err := experiments.Figure5(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		purity = 0
		for _, r := range results {
			purity += r.Purity
		}
		purity /= float64(len(results))
	}
	b.ReportMetric(purity, "mean-purity")
}

// BenchmarkFigure6RemoteStalls regenerates Figure 6 and reports the best
// remote-stall reduction achieved by automatic clustering.
func BenchmarkFigure6RemoteStalls(b *testing.B) {
	var bestReduction float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure6(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		bestReduction = 0
		for _, row := range rows {
			if red := 1 - row.RelativeStalls[sched.PolicyClustered]; red > bestReduction {
				bestReduction = red
			}
		}
	}
	b.ReportMetric(100*bestReduction, "best-stall-reduction-%")
}

// BenchmarkFigure7Performance regenerates Figure 7 and reports the best
// performance gain achieved by automatic clustering.
func BenchmarkFigure7Performance(b *testing.B) {
	var bestGain float64
	for i := 0; i < b.N; i++ {
		_, rows, err := experiments.Figure7(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		bestGain = 0
		for _, row := range rows {
			if g := row.RelativePerf[sched.PolicyClustered] - 1; g > bestGain {
				bestGain = g
			}
		}
	}
	b.ReportMetric(100*bestGain, "best-perf-gain-%")
}

// BenchmarkFigure8SamplingOverhead regenerates Figure 8 and reports the
// overhead at the paper's balance point (10% capture rate).
func BenchmarkFigure8SamplingOverhead(b *testing.B) {
	var overheadAt10 float64
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Figure8(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.RatePercent == 10 {
				overheadAt10 = p.OverheadPercent
			}
		}
	}
	b.ReportMetric(overheadAt10, "overhead-%-at-10%-rate")
}

// BenchmarkSpatialSensitivity regenerates the Section 6.4 study and
// reports the purity at the paper's 256-entry size.
func BenchmarkSpatialSensitivity(b *testing.B) {
	var purity float64
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.SpatialSensitivity(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Entries == 256 {
				purity = p.Purity
			}
		}
	}
	b.ReportMetric(purity, "purity-at-256")
}

// BenchmarkScale32Way regenerates the Section 7.4 scaling experiment and
// reports the hand-optimized gain on the 8-chip machine.
func BenchmarkScale32Way(b *testing.B) {
	opt := benchOptions()
	opt.EngineRounds = 1500
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Scale32(context.Background(), opt)
		if err != nil {
			b.Fatal(err)
		}
		gain = res.HandOptGain
	}
	b.ReportMetric(100*gain, "32way-handopt-gain-%")
}

// BenchmarkSDARPurity regenerates the Section 5.2.1 validation and
// reports the sampled-address purity.
func BenchmarkSDARPurity(b *testing.B) {
	var purity float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.SDARPurity(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		purity = res.Purity
	}
	b.ReportMetric(100*purity, "sdar-purity-%")
}

// BenchmarkPageVsPMU regenerates the Section 1 detector comparison and
// reports the page path's overhead multiple over the PMU path.
func BenchmarkPageVsPMU(b *testing.B) {
	var multiple float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.PageVsPMU(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		var pmu, page float64
		for _, r := range rows {
			if r.Workload == experiments.JBB && r.Approach == "pmu" {
				pmu = r.OverheadPercent
			}
			if r.Workload == experiments.JBB && r.Approach == "page" {
				page = r.OverheadPercent
			}
		}
		if pmu > 0 {
			multiple = page / pmu
		}
	}
	b.ReportMetric(multiple, "page-overhead-multiple")
}

// BenchmarkNUMAExtension regenerates the Section 8 NUMA study and reports
// the NUMA-aware engine's throughput gain over the NUMA-blind one.
func BenchmarkNUMAExtension(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, _, err := experiments.NUMA(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		if res.Clustered.OpsPerMCycle > 0 {
			gain = res.NUMAEngine.OpsPerMCycle/res.Clustered.OpsPerMCycle - 1
		}
	}
	b.ReportMetric(100*gain, "numa-aware-gain-%")
}

// BenchmarkClusteringAblation regenerates the algorithm/metric ablation
// and reports the paper algorithm's purity.
func BenchmarkClusteringAblation(b *testing.B) {
	var purity float64
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Ablation(context.Background(), benchOptions())
		if err != nil {
			b.Fatal(err)
		}
		purity = rows[0].Purity
	}
	b.ReportMetric(purity, "one-pass-purity")
}
