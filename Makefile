# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short test-race bench bench-compare bench-baseline fuzz-smoke experiments sweep-smoke examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the multi-minute experiment-shape tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Coherence regression guard: compare the broadcast-vs-directory
# benchmarks against the committed BENCH_coherence.json baseline. Fails
# when a benchmark regresses past tolerance or the directory's speedup on
# the 32-way machine drops below its required minimum.
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkCoherence -benchtime 1s ./internal/cache \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_coherence.json

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -run '^$$' -bench BenchmarkCoherence -benchtime 1s ./internal/cache \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_coherence.json -update

# Short fuzzing pass over the coherence differential target and the trace
# parser (CI runs the same).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzHierarchyAccess -fuzztime 30s ./internal/cache
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 15s ./internal/trace

# Race-detector coverage for the concurrent packages.
test-race:
	$(GO) test -race ./internal/metrics ./internal/sweep

# Regenerate every table/figure/study of the paper.
experiments:
	$(GO) run ./cmd/tcsim -exp all

# Tiny 2x2 sweep grid as a smoke test of the concurrent runner.
sweep-smoke:
	$(GO) run ./cmd/tcsim sweep \
		-workloads microbenchmark,volano -policies default,clustered \
		-warm 30 -engine 50 -measure 30

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chatserver
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/auctiondb
	$(GO) run ./examples/numanode

clean:
	$(GO) clean ./...
