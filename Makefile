# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet tclint lint test test-short test-race bench bench-compare bench-baseline fuzz-smoke experiments sweep-smoke examples clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (detrand, wallclock, maporder, errwrap,
# ctxplumb; see DESIGN.md §6), driven through go vet's vettool protocol
# so results share vet's per-package build cache.
tclint:
	$(GO) build -o bin/tclint ./cmd/tclint
	$(GO) vet -vettool=$(CURDIR)/bin/tclint ./...

# Full local lint: standard vet, the project analyzers, and staticcheck
# when installed (CI always runs it; the local toolbox may not have it).
lint: vet tclint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI runs it — install with:" ; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2023.1.7)" ; \
	fi

test:
	$(GO) test ./...

# Short mode skips the multi-minute experiment-shape tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Coherence regression guard: compare the broadcast-vs-directory
# benchmarks against the committed BENCH_coherence.json baseline. Fails
# when a benchmark regresses past tolerance or the directory's speedup on
# the 32-way machine drops below its required minimum.
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkCoherence -benchtime 1s ./internal/cache \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_coherence.json

# Refresh the committed baseline from this machine.
bench-baseline:
	$(GO) test -run '^$$' -bench BenchmarkCoherence -benchtime 1s ./internal/cache \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_coherence.json -update

# Short fuzzing pass over the coherence differential target and the trace
# parser (CI runs the same).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzHierarchyAccess -fuzztime 30s ./internal/cache
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 15s ./internal/trace

# Race-detector coverage for the concurrent packages.
test-race:
	$(GO) test -race ./internal/metrics ./internal/sweep

# Regenerate every table/figure/study of the paper.
experiments:
	$(GO) run ./cmd/tcsim -exp all

# Tiny 2x2 sweep grid as a smoke test of the concurrent runner.
sweep-smoke:
	$(GO) run ./cmd/tcsim sweep \
		-workloads microbenchmark,volano -policies default,clustered \
		-warm 30 -engine 50 -measure 30

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chatserver
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/auctiondb
	$(GO) run ./examples/numanode

clean:
	$(GO) clean ./...
	rm -rf bin
