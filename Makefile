# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short test-race bench experiments sweep-smoke examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the multi-minute experiment-shape tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Race-detector coverage for the concurrent packages.
test-race:
	$(GO) test -race ./internal/metrics ./internal/sweep

# Regenerate every table/figure/study of the paper.
experiments:
	$(GO) run ./cmd/tcsim -exp all

# Tiny 2x2 sweep grid as a smoke test of the concurrent runner.
sweep-smoke:
	$(GO) run ./cmd/tcsim sweep \
		-workloads microbenchmark,volano -policies default,clustered \
		-warm 30 -engine 50 -measure 30

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chatserver
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/auctiondb
	$(GO) run ./examples/numanode

clean:
	$(GO) clean ./...
