# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet test test-short bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Short mode skips the multi-minute experiment-shape tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table/figure/study of the paper.
experiments:
	$(GO) run ./cmd/tcsim -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chatserver
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/auctiondb
	$(GO) run ./examples/numanode

clean:
	$(GO) clean ./...
