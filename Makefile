# Convenience targets; everything is plain `go` underneath.

GO ?= go

.PHONY: all build vet tclint lint test test-short test-race bench bench-compare bench-baseline bench-smoke bench-sweep bench-sweep-smoke fuzz-smoke experiments sweep-smoke server-smoke snapshot-smoke fleet-smoke examples clean

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Project-specific analyzers (detrand, wallclock, maporder, errwrap,
# ctxplumb, nodeprecated, seedflow, snapfields; see DESIGN.md §6),
# driven through go vet's vettool protocol so results share vet's
# per-package build cache and the interprocedural analyzers' facts ride
# its vetx files. The cmd/ tree is allowlisted for wall-clock reads
# wholesale: operator-facing progress timing and the tcsimd system
# clock live there, never in internal/.
tclint:
	$(GO) build -o bin/tclint ./cmd/tclint
	$(GO) vet -vettool=$(CURDIR)/bin/tclint -wallclock.allow=threadcluster/cmd ./...

# Full local lint: standard vet, the project analyzers, and staticcheck
# when installed (CI always runs it; the local toolbox may not have it).
lint: vet tclint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./... ; \
	else \
		echo "staticcheck not installed; skipping (CI runs it — install with:" ; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@2023.1.7)" ; \
	fi

test:
	$(GO) test ./...

# Short mode skips the multi-minute experiment-shape tests.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Benchmark regression guards: compare the broadcast-vs-directory
# coherence benchmarks against BENCH_coherence.json, the seq-vs-
# parallel engine benchmarks plus the SoA-vs-AoS cache hot-path pair
# against BENCH_sim.json, and the incremental clustering per-event
# benchmarks against BENCH_clustering.json. Fails when a benchmark
# regresses past tolerance, a speedup pair drops below its required
# minimum, or a scaling pair exceeds its max_ratio ceiling (per-event
# cost at 100k threads must stay within 8x of 1k); the parallel-engine
# speedup gate only applies on hosts with at least min_cores cores
# (benchcmp skips it below that). The BENCH_sim pipelines concatenate
# two `go test -bench` runs — the machine-level engine pair from
# ./internal/sim and the single-thread cache floor pair from
# ./internal/cache — into one benchcmp input.
bench-compare:
	$(GO) test -run '^$$' -bench BenchmarkCoherence -benchtime 1s ./internal/cache \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_coherence.json
	{ $(GO) test -run '^$$' -bench 'BenchmarkMachineRound32Way(Seq|Parallel)' -benchtime 2s ./internal/sim ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSetAssocHot(SoA|AoSRef)' -benchtime 1s ./internal/cache ; } \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_sim.json
	$(GO) test -run '^$$' -bench BenchmarkIncrementalEvent -benchtime 1s ./internal/clustering \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_clustering.json

# Refresh the committed baselines from this machine.
bench-baseline:
	$(GO) test -run '^$$' -bench BenchmarkCoherence -benchtime 1s ./internal/cache \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_coherence.json -update
	{ $(GO) test -run '^$$' -bench 'BenchmarkMachineRound32Way(Seq|Parallel)' -benchtime 2s ./internal/sim ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSetAssocHot(SoA|AoSRef)' -benchtime 1s ./internal/cache ; } \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_sim.json -update
	$(GO) test -run '^$$' -bench BenchmarkIncrementalEvent -benchtime 1s ./internal/clustering \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_clustering.json -update

# Report-only benchmark smoke: runs the guarded benchmarks through
# benchcmp -report, which prints every comparison against the committed
# baselines but never fails. Suitable for CI runners whose shared-tenancy
# timing noise makes the bench-compare gates unreliable.
bench-smoke:
	$(GO) test -run '^$$' -bench BenchmarkCoherence -benchtime 1s ./internal/cache \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_coherence.json -report
	{ $(GO) test -run '^$$' -bench 'BenchmarkMachineRound32Way(Seq|Parallel)' -benchtime 2s ./internal/sim ; \
	  $(GO) test -run '^$$' -bench 'BenchmarkSetAssocHot(SoA|AoSRef)' -benchtime 1s ./internal/cache ; } \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_sim.json -report
	$(GO) test -run '^$$' -bench BenchmarkIncrementalEvent -benchtime 1s ./internal/clustering \
		| $(GO) run ./cmd/benchcmp -baseline BENCH_clustering.json -report

# Saturation sweep (tcsim bench-sweep): time the scoreboard workload
# over a chips x cores-per-chip x intensity grid under both engines and
# record the knee analysis into BENCH_sim.json's "sweep" section.
bench-sweep:
	$(GO) run ./cmd/tcsim bench-sweep -record BENCH_sim.json

# Fast report-only sweep for CI: a small grid printed to the log, never
# written anywhere and never failing on timing.
bench-sweep-smoke:
	$(GO) run ./cmd/tcsim bench-sweep -chips 1,2,4 -cores 1 -intensity 0.2,0.6 -rounds 6 -warm 2

# Short fuzzing pass over the coherence differential target, the trace
# parser, the snapshot decoder and the sketch estimator's error-bound
# invariants (CI runs the same).
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzHierarchyAccess -fuzztime 30s ./internal/cache
	$(GO) test -run '^$$' -fuzz FuzzLoad -fuzztime 15s ./internal/trace
	$(GO) test -run '^$$' -fuzz FuzzSnapshotDecode -fuzztime 15s ./internal/sim
	$(GO) test -run '^$$' -fuzz FuzzSketchEstimate -fuzztime 15s ./internal/clustering

# Race-detector coverage for the concurrent packages, including the
# chip-parallel engine differential (seq vs parallel byte-identity under
# every GOMAXPROCS level), the golden-snapshot compatibility test, the
# snapshot N+M differential (including the sketch state provider), the
# batched-vs-serial slice-barrier drain and broadcast-vs-directory
# differentials at several GOMAXPROCS levels, the incremental-vs-batch
# clustering differential, and the job server + client under load.
test-race:
	$(GO) test -race ./internal/metrics ./internal/sweep
	$(GO) test -race -run 'TestEngine|TestRunSlice|TestSnapshot|TestGolden' ./internal/sim
	$(GO) test -race -short -run 'TestSliceBarrierBatchedVsSerial|TestBroadcastDirectoryEquivalence' -cpu 1,2,4 ./internal/cache
	$(GO) test -race -run 'TestIncremental|TestSketch' -cpu 1,2,4 ./internal/clustering
	$(GO) test -race ./internal/server ./internal/client ./internal/fleet

# End-to-end smoke of the tcsimd job service: boot the daemon, submit a
# grid, require the job digest to equal the offline sweep digest, and
# scrape /metrics.
server-smoke:
	sh ./scripts/server_smoke.sh

# End-to-end smoke of snapshot/restore and checkpoint/resume: a split
# `tcsim snapshot` run must be byte-identical to an unbroken one, and a
# tcsimd job cut down mid-run must resume from its checkpoint to the
# offline sweep digest.
snapshot-smoke:
	sh ./scripts/snapshot_smoke.sh

# End-to-end smoke of the tcfleet coordinator: start two tcsimd
# workers, SIGKILL one mid-sweep, and require the fleet-merged digest
# to equal the offline sweep digest.
fleet-smoke:
	sh ./scripts/fleet_smoke.sh

# Regenerate every table/figure/study of the paper.
experiments:
	$(GO) run ./cmd/tcsim -exp all

# Tiny 2x2 sweep grid as a smoke test of the concurrent runner.
sweep-smoke:
	$(GO) run ./cmd/tcsim sweep \
		-workloads microbenchmark,volano -policies default,clustered \
		-warm 30 -engine 50 -measure 30

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/chatserver
	$(GO) run ./examples/warehouse
	$(GO) run ./examples/auctiondb
	$(GO) run ./examples/numanode

clean:
	$(GO) clean ./...
	rm -rf bin
