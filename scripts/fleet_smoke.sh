#!/usr/bin/env sh
# fleet_smoke.sh: end-to-end smoke test of the tcfleet coordinator.
#
# Builds tcsimd, tcfleet and tcsim, starts two tcsimd workers on
# ephemeral ports, launches a fleet sweep, SIGKILLs one worker as soon
# as the first shard completes, and checks the coordinator's one
# contract: the merged digest equals the digest `tcsim sweep -digest`
# computes offline for the same grid — fleet size, shard order and the
# mid-sweep worker death notwithstanding.
#
# Used by `make fleet-smoke` and the CI fleet-smoke job.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
PID1=""
PID2=""
FLEET_PID=""
cleanup() {
    for p in "$PID1" "$PID2" "$FLEET_PID"; do
        [ -n "$p" ] && kill "$p" 2>/dev/null || true
    done
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "fleet-smoke: building tcsimd, tcfleet and tcsim"
$GO build -o "$WORK/tcsimd" ./cmd/tcsimd
$GO build -o "$WORK/tcfleet" ./cmd/tcfleet
$GO build -o "$WORK/tcsim" ./cmd/tcsim

start_worker() {
    # $1 = stdout file. Prints "URL PID" on one line. Runs in a command
    # substitution, so the caller parses both values from stdout.
    "$WORK/tcsimd" -addr 127.0.0.1:0 -job-workers 2 >"$1" 2>"$1.err" &
    pid=$!
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/^tcsimd: listening on //p' "$1")
        [ -n "$ADDR" ] && break
        if ! kill -0 "$pid" 2>/dev/null; then
            echo "fleet-smoke: tcsimd exited early" >&2
            cat "$1.err" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$ADDR" ]; then
        echo "fleet-smoke: tcsimd never printed its listen banner" >&2
        cat "$1.err" >&2
        exit 1
    fi
    echo "$ADDR $pid"
}

set -- $(start_worker "$WORK/w1.out")
W1=$1
PID1=$2
set -- $(start_worker "$WORK/w2.out")
W2=$1
PID2=$2
echo "fleet-smoke: workers up at $W1 (pid $PID1) and $W2 (pid $PID2)"

GRID="-workloads microbenchmark,volano -policies default,round-robin,clustered -warm 10 -engine 20 -measure 10 -seed 5"

# shellcheck disable=SC2086 # word-splitting the grid flags is the point
OFFLINE=$("$WORK/tcsim" sweep -digest $GRID 2>/dev/null)
echo "fleet-smoke: offline digest $OFFLINE"

# Launch the fleet run in the background so we can kill a worker while
# it is still sweeping.
# shellcheck disable=SC2086
"$WORK/tcfleet" -workers "$W1,$W2" $GRID \
    -events "$WORK/events.ndjson" -digest \
    >"$WORK/fleet.out" 2>"$WORK/fleet.err" &
FLEET_PID=$!

# SIGKILL worker 2 the moment the first shard lands — the coordinator
# must route its remaining shards to worker 1 and still converge.
i=0
while [ $i -lt 300 ]; do
    if grep -q '"type":"shard_done"' "$WORK/events.ndjson" 2>/dev/null; then
        break
    fi
    if ! kill -0 "$FLEET_PID" 2>/dev/null; then
        break # fleet already finished; the kill below is a no-op
    fi
    sleep 0.1
    i=$((i + 1))
done
kill -9 "$PID2" 2>/dev/null || true
PID2=""
echo "fleet-smoke: SIGKILLed worker 2 mid-sweep"

if ! wait "$FLEET_PID"; then
    echo "fleet-smoke: tcfleet failed" >&2
    cat "$WORK/fleet.err" >&2
    cat "$WORK/events.ndjson" >&2 || true
    exit 1
fi
FLEET_PID=""

MERGED=$(cat "$WORK/fleet.out")
if [ "$MERGED" != "$OFFLINE" ]; then
    echo "fleet-smoke: DIGEST MISMATCH: offline=$OFFLINE fleet=$MERGED" >&2
    cat "$WORK/events.ndjson" >&2 || true
    exit 1
fi
echo "fleet-smoke: merged digest matches offline: $MERGED"

for ev in '"type":"shard_leased"' '"type":"done"'; do
    if ! grep -q "$ev" "$WORK/events.ndjson"; then
        echo "fleet-smoke: event stream lacks $ev" >&2
        cat "$WORK/events.ndjson" >&2
        exit 1
    fi
done
echo "fleet-smoke: event stream carries lease and completion events"

kill "$PID1"
wait "$PID1" 2>/dev/null || true
PID1=""
echo "fleet-smoke: ok"
