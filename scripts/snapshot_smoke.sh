#!/usr/bin/env sh
# snapshot_smoke.sh: end-to-end smoke test of the snapshot/restore and
# checkpoint/resume paths.
#
# Two contracts are pinned:
#
#   1. Machine snapshots: `tcsim snapshot` run for N+M rounds in one go
#      and as a snapshot/resume pair at N produces byte-identical
#      snapshot files (the canonical encoding is a pure function of the
#      simulated state).
#   2. Daemon checkpoints: a tcsimd job cut down mid-run by a zero-grace
#      drain leaves a completed-cell checkpoint beside the spool, and a
#      restarted daemon resumes it to the same result digest
#      `tcsim sweep -digest` computes offline.
#
# Used by `make snapshot-smoke` and the CI snapshot-smoke job.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "snapshot-smoke: building tcsimd and tcsim"
$GO build -o "$WORK/tcsimd" ./cmd/tcsimd
$GO build -o "$WORK/tcsim" ./cmd/tcsim

# --- 1. split-run snapshot identity ---------------------------------

"$WORK/tcsim" snapshot -policy clustered -rounds 80 -out "$WORK/full.snap" >/dev/null 2>&1
"$WORK/tcsim" snapshot -policy clustered -rounds 50 -out "$WORK/half.snap" >/dev/null 2>&1
"$WORK/tcsim" snapshot -policy clustered -resume "$WORK/half.snap" -rounds 30 \
    -out "$WORK/resumed.snap" >/dev/null 2>&1
if ! cmp -s "$WORK/full.snap" "$WORK/resumed.snap"; then
    echo "snapshot-smoke: SNAPSHOT MISMATCH: 80 rounds != 50+30 rounds" >&2
    exit 1
fi
echo "snapshot-smoke: split-run snapshot is byte-identical to the unbroken run"

# --- 2. daemon checkpoint, kill, resume -----------------------------

SPOOL="$WORK/spool"
mkdir -p "$SPOOL"

start_daemon() {
    : >"$WORK/stdout"
    "$WORK/tcsimd" -addr 127.0.0.1:0 -job-workers 1 \
        -spool "$SPOOL" -checkpoint-every 1 -grace 0s \
        >"$WORK/stdout" 2>"$WORK/stderr" &
    PID=$!
    ADDR=""
    i=0
    while [ $i -lt 100 ]; do
        ADDR=$(sed -n 's/^tcsimd: listening on //p' "$WORK/stdout")
        [ -n "$ADDR" ] && break
        if ! kill -0 "$PID" 2>/dev/null; then
            echo "snapshot-smoke: tcsimd exited early" >&2
            cat "$WORK/stderr" >&2
            exit 1
        fi
        sleep 0.1
        i=$((i + 1))
    done
    if [ -z "$ADDR" ]; then
        echo "snapshot-smoke: tcsimd never printed its listen banner" >&2
        cat "$WORK/stderr" >&2
        exit 1
    fi
}

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

GRID="-workloads microbenchmark,volano -policies default,clustered -warm 100 -engine 300 -measure 100 -seed 5"

# shellcheck disable=SC2086 # word-splitting the grid flags is the point
OFFLINE=$("$WORK/tcsim" sweep -digest $GRID 2>/dev/null)

start_daemon
echo "snapshot-smoke: daemon up at $ADDR (spool $SPOOL)"

# Admit the job without waiting, then let it run until the first
# completed grid cell lands in the checkpoint.
# shellcheck disable=SC2086
"$WORK/tcsim" submit -addr "$ADDR" -id ckpt-job -wait=false $GRID >/dev/null 2>&1

i=0
while [ ! -f "$SPOOL/ckpt-job.ckpt" ]; do
    if [ $i -ge 300 ]; then
        echo "snapshot-smoke: no checkpoint appeared within 30s" >&2
        cat "$WORK/stderr" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done

# Cut the job down mid-run: zero grace means the drain deadline strikes
# immediately, the running job is canceled and its final checkpoint
# flushed on the way out.
kill -TERM "$PID"
wait "$PID" 2>/dev/null || true
PID=""
if [ ! -f "$SPOOL/ckpt-job.ckpt" ]; then
    echo "snapshot-smoke: checkpoint missing after the cut drain" >&2
    exit 1
fi
echo "snapshot-smoke: job cut mid-run; checkpoint survives in the spool"

# Restart onto the same spool: the checkpoint re-admits and the job
# resumes from its completed cells.
start_daemon
echo "snapshot-smoke: daemon restarted at $ADDR"

STATE=""
i=0
while [ $i -lt 600 ]; do
    STATUS=$(fetch "$ADDR/v1/jobs/ckpt-job" 2>/dev/null || true)
    STATE=$(printf '%s' "$STATUS" | sed -n 's/.*"state": *"\([a-z]*\)".*/\1/p')
    case "$STATE" in
    done) break ;;
    failed | canceled)
        echo "snapshot-smoke: resumed job ended $STATE: $STATUS" >&2
        exit 1
        ;;
    esac
    sleep 0.1
    i=$((i + 1))
done
if [ "$STATE" != "done" ]; then
    echo "snapshot-smoke: resumed job never finished (last state: $STATE)" >&2
    cat "$WORK/stderr" >&2
    exit 1
fi

REMOTE=$(printf '%s' "$STATUS" | sed -n 's/.*"digest": *"\([a-z0-9:]*\)".*/\1/p')
if [ "$OFFLINE" != "$REMOTE" ]; then
    echo "snapshot-smoke: DIGEST MISMATCH: offline=$OFFLINE resumed=$REMOTE" >&2
    exit 1
fi
echo "snapshot-smoke: resumed digest matches the offline sweep: $REMOTE"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "snapshot-smoke: ok"
