#!/usr/bin/env sh
# server_smoke.sh: end-to-end smoke test of the tcsimd job service.
#
# Builds tcsimd and tcsim, starts the daemon on an ephemeral port,
# submits a sweep grid, and checks the two contracts the service makes:
#
#   1. Determinism across the wire: the job's result digest equals the
#      digest `tcsim sweep -digest` computes offline for the same grid.
#   2. Observability: /metrics serves Prometheus text with the server
#      series alongside the sim series of the completed job.
#
# Used by `make server-smoke` and the CI server-smoke job.
set -eu

GO=${GO:-go}
WORK=$(mktemp -d)
PID=""
cleanup() {
    [ -n "$PID" ] && kill "$PID" 2>/dev/null || true
    rm -rf "$WORK"
}
trap cleanup EXIT INT TERM

echo "server-smoke: building tcsimd and tcsim"
$GO build -o "$WORK/tcsimd" ./cmd/tcsimd
$GO build -o "$WORK/tcsim" ./cmd/tcsim

"$WORK/tcsimd" -addr 127.0.0.1:0 -job-workers 2 >"$WORK/stdout" 2>"$WORK/stderr" &
PID=$!

ADDR=""
i=0
while [ $i -lt 100 ]; do
    ADDR=$(sed -n 's/^tcsimd: listening on //p' "$WORK/stdout")
    [ -n "$ADDR" ] && break
    if ! kill -0 "$PID" 2>/dev/null; then
        echo "server-smoke: tcsimd exited early" >&2
        cat "$WORK/stderr" >&2
        exit 1
    fi
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$ADDR" ]; then
    echo "server-smoke: tcsimd never printed its listen banner" >&2
    cat "$WORK/stderr" >&2
    exit 1
fi
echo "server-smoke: daemon up at $ADDR"

GRID="-workloads microbenchmark,volano -policies default,clustered -warm 10 -engine 20 -measure 10 -seed 5"

# shellcheck disable=SC2086 # word-splitting the grid flags is the point
OFFLINE=$("$WORK/tcsim" sweep -digest $GRID 2>/dev/null)
# shellcheck disable=SC2086
REMOTE=$("$WORK/tcsim" submit -addr "$ADDR" -digest $GRID 2>/dev/null)

if [ "$OFFLINE" != "$REMOTE" ]; then
    echo "server-smoke: DIGEST MISMATCH: offline=$OFFLINE server=$REMOTE" >&2
    exit 1
fi
echo "server-smoke: digests match: $REMOTE"

fetch() {
    if command -v curl >/dev/null 2>&1; then
        curl -fsS "$1"
    else
        wget -qO- "$1"
    fi
}

METRICS=$(fetch "$ADDR/metrics")
for series in server_jobs_admitted_total server_queue_depth server_http_request_ms_bucket sim_ops_total; do
    if ! printf '%s\n' "$METRICS" | grep -q "^$series"; then
        echo "server-smoke: /metrics lacks $series" >&2
        printf '%s\n' "$METRICS" >&2
        exit 1
    fi
done
echo "server-smoke: /metrics carries server and sim series"

kill "$PID"
wait "$PID" 2>/dev/null || true
PID=""
echo "server-smoke: ok"
