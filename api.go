package threadcluster

// This file is the library's public API surface: the internal packages'
// core types re-exported by alias, so downstream users can build machines,
// install workloads and attach the thread-clustering engine without
// importing internal paths.
//
// A minimal session — build, run, snapshot, restore, resume:
//
//	mcfg := threadcluster.DefaultMachineConfig()
//	mcfg.Policy = threadcluster.PolicyClustered
//	install := func(m *threadcluster.Machine) error {
//		arena := threadcluster.NewArena()
//		spec, err := threadcluster.NewSyntheticWorkload(arena, threadcluster.DefaultSyntheticConfig())
//		if err != nil {
//			return err
//		}
//		if err := spec.Install(m); err != nil {
//			return err
//		}
//		engine, err := threadcluster.NewEngine(m, threadcluster.DefaultEngineConfig())
//		if err != nil {
//			return err
//		}
//		return engine.Install()
//	}
//
//	machine, _ := threadcluster.NewMachine(mcfg)
//	_ = install(machine)
//	_ = machine.RunRoundsCtx(context.Background(), 1500)
//
//	snap, _ := machine.Snapshot(context.Background())
//	raw := snap.Encode() // canonical bytes; persist anywhere
//
//	decoded, _ := threadcluster.DecodeSnapshot(raw)
//	resumed, _ := threadcluster.RestoreMachine(mcfg, decoded, install)
//	_ = resumed.RunRoundsCtx(context.Background(), 1500)
//	// resumed is now byte-identical to a machine that ran 3000 rounds
//	// uninterrupted: same metrics, same PMU counts, same snapshot digest.

import (
	"context"

	"threadcluster/internal/cache"
	"threadcluster/internal/clustering"
	"threadcluster/internal/core"
	"threadcluster/internal/memory"
	"threadcluster/internal/metrics"
	"threadcluster/internal/sched"
	"threadcluster/internal/sim"
	"threadcluster/internal/sweep"
	"threadcluster/internal/topology"
	"threadcluster/internal/trace"
	"threadcluster/internal/workloads"
)

// Machine simulation.
type (
	// Machine is the simulated SMP-CMP-SMT system: topology, coherent
	// cache hierarchy, per-CPU PMUs, scheduler and execution engine.
	Machine = sim.Machine
	// MachineConfig assembles a Machine.
	MachineConfig = sim.Config
	// Thread is one software thread: an ID, a memory-reference generator
	// and a ground-truth partition label.
	Thread = sim.Thread
	// MemRef is one unit of simulated work.
	MemRef = sim.MemRef
	// Generator produces a thread's reference stream.
	Generator = sim.Generator
)

// NewMachine builds a machine.
func NewMachine(cfg MachineConfig) (*Machine, error) { return sim.NewMachine(cfg) }

// DefaultMachineConfig returns the paper's evaluation platform: the
// OpenPower 720 topology, Figure 1 latencies and Table 1 caches.
func DefaultMachineConfig() MachineConfig { return sim.DefaultConfig() }

// Snapshot & restore.
type (
	// MachineSnapshot is a versioned, deterministic serialization of a
	// machine's complete mutable state — caches and coherence directory,
	// PMUs, scheduler, RNG streams, per-thread generator cursors, and
	// every registered state provider (e.g. the clustering engine).
	// Machine.Snapshot captures one; Encode/Digest render it canonically.
	MachineSnapshot = sim.MachineSnapshot
	// MachineStateProvider lets a component attached to a machine ride
	// along in snapshots as an opaque named section (see
	// Machine.RegisterStateProvider).
	MachineStateProvider = sim.StateProvider
)

// SnapshotVersion is the current MachineSnapshot encoding version.
const SnapshotVersion = sim.SnapshotVersion

// DecodeSnapshot parses a canonical encoding produced by
// MachineSnapshot.Encode, rejecting corrupt or mismatched input.
func DecodeSnapshot(b []byte) (*MachineSnapshot, error) { return sim.DecodeSnapshot(b) }

// RestoreMachine rebuilds a machine from its configuration and a
// snapshot. install must recreate the snapshotted machine's composition
// exactly — same threads in the same order, same engine and monitoring
// setup — because generators and handlers are live closures a snapshot
// cannot carry; the snapshot then overlays all mutable state.
func RestoreMachine(cfg MachineConfig, snap *MachineSnapshot, install func(*Machine) error) (*Machine, error) {
	return sim.RestoreMachine(cfg, snap, install)
}

// Topology and placement.
type (
	// Topology is the machine shape (chips x cores x SMT contexts).
	Topology = topology.Topology
	// CPUID identifies one hardware context.
	CPUID = topology.CPUID
	// Latencies is the memory-hierarchy cost ladder.
	Latencies = topology.Latencies
	// Policy selects a thread-placement strategy.
	Policy = sched.Policy
	// ThreadID identifies a software thread.
	ThreadID = sched.ThreadID
)

// The four placement strategies of the paper's Section 5.4.
const (
	PolicyDefault       = sched.PolicyDefault
	PolicyRoundRobin    = sched.PolicyRoundRobin
	PolicyHandOptimized = sched.PolicyHandOptimized
	PolicyClustered     = sched.PolicyClustered
)

// OpenPower720 is the paper's 2x2x2 evaluation machine.
func OpenPower720() Topology { return topology.OpenPower720() }

// Power5_32Way is the Section 7.4 8-chip machine.
func Power5_32Way() Topology { return topology.Power5_32Way() }

// DefaultLatencies is the Figure 1 latency ladder.
func DefaultLatencies() Latencies { return topology.DefaultLatencies() }

// Memory.
type (
	// Addr is a simulated virtual address.
	Addr = memory.Addr
	// Region is a contiguous allocation.
	Region = memory.Region
	// Arena allocates the simulated address space. One arena is one
	// machine's physical address space: all workloads installed on a
	// machine must share it.
	Arena = memory.Arena
)

// LineSize is the cache-line (and sharing-detection) granularity.
const LineSize = memory.LineSize

// NewArena returns a fresh simulated address space.
func NewArena() *Arena { return memory.NewDefaultArena() }

// Caches.
type (
	// CacheConfig sizes one cache level.
	CacheConfig = cache.Config
	// HierarchyConfig sizes the three levels and selects the coherence
	// implementation.
	HierarchyConfig = cache.HierarchyConfig
	// CoherenceMode selects how the hierarchy resolves cross-chip
	// coherence: a per-line directory (the default fast path) or
	// broadcast snooping. Both produce identical simulation results.
	CoherenceMode = cache.CoherenceMode
)

// Coherence implementations. CoherenceDirectory is the default and the
// zero value; CoherenceBroadcast is the reference implementation the
// directory is differentially tested against.
const (
	CoherenceDirectory = cache.CoherenceDirectory
	CoherenceBroadcast = cache.CoherenceBroadcast
)

// ParseCoherenceMode parses "directory" or "broadcast".
func ParseCoherenceMode(s string) (CoherenceMode, error) { return cache.ParseCoherenceMode(s) }

// Power5Caches returns Table 1's cache sizes.
func Power5Caches() HierarchyConfig { return cache.Power5Config() }

// The thread-clustering engine (the paper's contribution).
type (
	// Engine is the four-phase thread-clustering engine.
	Engine = core.Engine
	// EngineConfig parameterizes it; the defaults are the paper's values.
	EngineConfig = core.Config
	// EngineSnapshot is a structured point-in-time view of the engine
	// (phase, activation and migration counts, sampling progress, detected
	// clusters); Engine.Snapshot returns one and Engine.Report renders it.
	EngineSnapshot = core.EngineSnapshot
	// ClusterSnapshot is one detected cluster inside an EngineSnapshot.
	ClusterSnapshot = core.ClusterSnapshot
	// Cluster is a detected group of sharing threads.
	Cluster = clustering.Cluster
	// ShMap is a per-thread sharing signature.
	ShMap = clustering.ShMap
)

// NewEngine attaches a thread-clustering engine to a machine. Call
// Install on the result to arm it.
func NewEngine(m *Machine, cfg EngineConfig) (*Engine, error) { return core.New(m, cfg) }

// DefaultEngineConfig returns the paper's parameter choices (20%
// activation per 10^9-cycle window, 1-in-10 sampling, 10^6-sample target,
// 256-entry shMaps, dot-product similarity at threshold 40000). For
// second-scale simulations see the scaled values used throughout
// internal/experiments.
func DefaultEngineConfig() EngineConfig { return core.DefaultConfig() }

// Workloads.
type (
	// WorkloadSpec is a buildable workload: threads plus ground truth.
	WorkloadSpec = workloads.Spec
	// SyntheticConfig parameterizes the scoreboard microbenchmark.
	SyntheticConfig = workloads.SyntheticConfig
	// VolanoConfig parameterizes the chat-server workload.
	VolanoConfig = workloads.VolanoConfig
	// JBBConfig parameterizes the warehouse workload.
	JBBConfig = workloads.JBBConfig
	// RubisConfig parameterizes the auction-database workload.
	RubisConfig = workloads.RubisConfig
	// StagedConfig parameterizes the SEDA-style pipeline workload.
	StagedConfig = workloads.StagedConfig
	// BTree is the warehouse/index structure laid out in simulated memory.
	BTree = workloads.BTree
)

// Workload constructors and their default configurations.
func NewSyntheticWorkload(a *Arena, cfg SyntheticConfig) (*WorkloadSpec, error) {
	return workloads.NewSynthetic(a, cfg)
}
func NewVolanoWorkload(a *Arena, cfg VolanoConfig) (*WorkloadSpec, error) {
	return workloads.NewVolano(a, cfg)
}
func NewJBBWorkload(a *Arena, cfg JBBConfig) (*WorkloadSpec, error) {
	return workloads.NewJBB(a, cfg)
}
func NewRubisWorkload(a *Arena, cfg RubisConfig) (*WorkloadSpec, error) {
	return workloads.NewRubis(a, cfg)
}
func NewStagedWorkload(a *Arena, cfg StagedConfig) (*WorkloadSpec, error) {
	return workloads.NewStaged(a, cfg)
}
func DefaultSyntheticConfig() SyntheticConfig { return workloads.DefaultSyntheticConfig() }
func DefaultVolanoConfig() VolanoConfig       { return workloads.DefaultVolanoConfig() }
func DefaultJBBConfig() JBBConfig             { return workloads.DefaultJBBConfig() }
func DefaultRubisConfig() RubisConfig         { return workloads.DefaultRubisConfig() }
func DefaultStagedConfig() StagedConfig       { return workloads.DefaultStagedConfig() }

// Metrics. Every machine carries a metrics.Registry; Machine.SnapshotMetrics
// captures it as an immutable, deterministically ordered Snapshot that can
// be diffed (Delta), combined across machines (MergeSnapshots) and exported
// as JSON or CSV.
type (
	// MetricsRegistry is a concurrency-safe registry of named counters,
	// gauges and histograms with labeled series.
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is an immutable point-in-time capture of a registry.
	MetricsSnapshot = metrics.Snapshot
	// MetricSample is one series inside a snapshot.
	MetricSample = metrics.Sample
	// MetricLabels distinguishes series that share a metric name.
	MetricLabels = metrics.Labels
)

// NewMetricsRegistry returns an empty registry, for instrumenting code
// outside a Machine (machines create their own).
func NewMetricsRegistry() *MetricsRegistry { return metrics.NewRegistry() }

// MergeSnapshots sums snapshots from independent runs: counters and
// histogram buckets add, gauges sum.
func MergeSnapshots(snaps ...MetricsSnapshot) MetricsSnapshot {
	return metrics.MergeAll(snaps)
}

// Concurrent sweeps. The sweep helpers fan independent simulations across
// a worker pool with deterministic per-task seeding: results are identical
// for any worker count.
type (
	// SweepTask is one independent simulation to run on the pool.
	SweepTask = sweep.Task
	// SweepResult pairs a task with its outcome.
	SweepResult = sweep.Result
)

// RunSweep executes tasks on a pool of the given size (0 = GOMAXPROCS)
// and returns results in task order.
func RunSweep(ctx context.Context, tasks []SweepTask, workers int) ([]SweepResult, error) {
	return sweep.Run(ctx, tasks, workers)
}

// DeriveSeed decorrelates a per-task seed from a base seed and task index;
// the mapping is fixed, so sweeps are reproducible run to run.
func DeriveSeed(base int64, index int) int64 { return sweep.DeriveSeed(base, index) }

// Traces.
type (
	// Trace is a recorded workload reference stream.
	Trace = trace.Trace
	// TraceRecorder captures streams from live threads.
	TraceRecorder = trace.Recorder
)

// NewTraceRecorder returns a recorder; wrap each thread before installing
// it on a machine.
func NewTraceRecorder(maxRefsPerThread int) *TraceRecorder {
	return trace.NewRecorder(maxRefsPerThread)
}
